package kvstore

import (
	"errors"
	"fmt"
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/rsm"
	"heardof/internal/shard"
)

func newShardedKV(t *testing.T, shards int, providers func(int) func(int) core.HOProvider,
	tune rsm.Tuning) *ShardedCluster {
	t.Helper()
	if providers == nil {
		providers = func(int) func(int) core.HOProvider { return adversary.SlotFull() }
	}
	c, err := NewShardedCluster(shard.Config{Shards: shards}, 3, otr.Algorithm{}, providers, 300, tune)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestShardedClusterBasicOps(t *testing.T) {
	c := newShardedKV(t, 4, nil, rsm.Tuning{BatchSize: 8})
	const keys = 40
	for i := 0; i < keys; i++ {
		if err := c.Submit(i%3, Command{Op: OpPut, Key: fmt.Sprintf("k%03d", i), Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := c.Drain(50)
	if err != nil {
		t.Fatal(err)
	}
	if n != keys {
		t.Errorf("drained %d of %d", n, keys)
	}
	if !c.Converged() {
		t.Error("a shard diverged")
	}
	// Every key is readable from its owning shard, and ONLY stored there.
	shardHit := make([]bool, 4)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%03d", i)
		v, ok := c.Get(key)
		if !ok || v != fmt.Sprintf("v%d", i) {
			t.Errorf("Get(%s) = (%q, %v)", key, v, ok)
		}
		owner := c.RouteKey(key)
		shardHit[owner] = true
		for s := 0; s < c.Shards(); s++ {
			_, has := c.Replica(s, 0).SM.Get(key)
			if has != (s == owner) {
				t.Errorf("key %s present on shard %d, owner is %d", key, s, owner)
			}
		}
	}
	for s, hit := range shardHit {
		if !hit {
			t.Errorf("no key routed to shard %d of 4 (40 keys)", s)
		}
	}
	if st := c.Stats(); st.Committed != keys {
		t.Errorf("aggregate committed %d, want %d", st.Committed, keys)
	}
	if err := c.Submit(-1, Command{Op: OpPut, Key: "x"}); err == nil {
		t.Error("bad contact accepted")
	}
}

func TestShardedClusterHeterogeneousEnvs(t *testing.T) {
	// Shard 1 under 30% loss, others fault-free — all converge.
	providers := func(s int) func(int) core.HOProvider {
		if s == 1 {
			return adversary.SlotLoss(0.3, 9)
		}
		return adversary.SlotFull()
	}
	c, err := NewShardedCluster(shard.Config{Shards: 3, Router: shard.ModRouter{}}, 5, otr.Algorithm{},
		providers, 500, rsm.Tuning{BatchSize: 4, Pipeline: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		if err := c.Submit(0, Command{Op: OpPut, Key: fmt.Sprintf("key-%d", i), Value: "v"}); err != nil {
			t.Fatal(err)
		}
	}
	if n, derr := c.Drain(100); derr != nil || n != 48 {
		t.Fatalf("drain: n=%d err=%v", n, derr)
	}
	if !c.Converged() {
		t.Error("replicas diverged under a heterogeneous environment")
	}
}

func TestShardedClusterWorkloadHarness(t *testing.T) {
	// The closed-loop harness over the sharded store: mixed per-shard
	// environments, zipfian keys, per-shard convergence afterwards.
	providers := func(s int) func(int) core.HOProvider {
		switch s % 3 {
		case 1:
			return adversary.SlotLoss(0.2, 100+uint64(s))
		case 2:
			return adversary.SlotRotatingCrash(5, 10)
		default:
			return adversary.SlotFull()
		}
	}
	c, err := NewShardedCluster(shard.Config{Shards: 4}, 5, otr.Algorithm{}, providers, 400,
		rsm.Tuning{BatchSize: 8, Pipeline: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := shard.RunWorkload(c.Sharded(), rsm.WorkloadConfig{
		Clients: 12, Rate: 0.8, WriteRatio: 0.75, Keys: 64,
		Dist: rsm.Zipfian, ZipfS: 0.99, Ops: 150, MaxSlots: 2000, Seed: 6,
	}, WorkloadCommand, WorkloadRouteKey)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Completed != 150 {
		t.Errorf("completed %d of 150", res.Aggregate.Completed)
	}
	if !c.Converged() {
		t.Error("a shard diverged after the workload")
	}
	total := 0
	for s := 0; s < c.Shards(); s++ {
		total += c.Replica(s, 0).SM.Len()
	}
	if total != 150 {
		t.Errorf("state machines applied %d commands in total, want 150", total)
	}
	// Regression: the workload must route every op the way the store
	// routes its string key (WorkloadRouteKey), or Get would read a shard
	// that never applied the put. Every written key must live on its
	// RouteKey shard and nowhere else.
	for k := 0; k < 64; k++ {
		key := fmt.Sprintf("k%03d", k)
		owner := c.RouteKey(key)
		for s := 0; s < c.Shards(); s++ {
			if _, has := c.Replica(s, 0).SM.Get(key); has && s != owner {
				t.Errorf("key %s applied on shard %d, but RouteKey says %d — Get would miss it", key, s, owner)
			}
		}
	}
}

func TestShardedClusterValidation(t *testing.T) {
	if _, err := NewShardedCluster(shard.Config{Shards: 0}, 3, otr.Algorithm{},
		func(int) func(int) core.HOProvider { return adversary.SlotFull() }, 300, rsm.Tuning{}); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewShardedCluster(shard.Config{Shards: 2}, 3, otr.Algorithm{}, nil, 300, rsm.Tuning{}); err == nil {
		t.Error("nil providers accepted")
	}
	if _, err := NewShardedCluster(shard.Config{Shards: 2}, 0, otr.Algorithm{},
		func(int) func(int) core.HOProvider { return adversary.SlotFull() }, 300, rsm.Tuning{}); err == nil {
		t.Error("0 replicas accepted")
	}
	var undecided *ShardedCluster
	undecided = newShardedKV(t, 2, func(int) func(int) core.HOProvider {
		return func(int) core.HOProvider { return adversary.Silence{} }
	}, rsm.Tuning{})
	undecided.Submit(0, Command{Op: OpPut, Key: "k", Value: "v"})
	if _, err := undecided.Drain(2); !errors.Is(err, ErrSlotUndecided) {
		t.Errorf("drain error = %v, want ErrSlotUndecided", err)
	}
}
