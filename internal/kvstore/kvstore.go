// Package kvstore builds a replicated key-value store on top of repeated
// consensus in the Heard-Of model — the kind of application the paper's
// introduction motivates (consensus "appears when implementing atomic
// broadcast, group membership, etc.").
//
// The replication mechanics live in internal/rsm: each log slot decides a
// BATCH of commands (bitmask codec, so consensus cost is amortized over
// bursts), up to Pipeline slots run in flight per window with in-order
// apply, and submissions ride client sessions with exactly-once dedup.
// This package supplies the KV state machine and the store-shaped API;
// all replicas converge to the same state no matter which transmission
// faults the environment inflicts — provided each slot's instance
// eventually meets its liveness predicate.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"heardof/internal/core"
	"heardof/internal/rsm"
)

// Op is a state machine operation.
type Op int

const (
	// OpPut sets a key.
	OpPut Op = iota + 1
	// OpDelete removes a key.
	OpDelete
	// OpGet reads a key through the replicated log — a linearizable
	// read: it changes no state but occupies a log position, so it is
	// ordered against every write (workload generators use it for the
	// read side of their mix).
	OpGet
)

// Command is one replicated operation.
type Command struct {
	Op    Op
	Key   string
	Value string
}

// String implements fmt.Stringer.
func (c Command) String() string {
	switch c.Op {
	case OpDelete:
		return "del " + c.Key
	case OpGet:
		return "get " + c.Key
	default:
		return "put " + c.Key + "=" + c.Value
	}
}

// StateMachine is the deterministic KV state machine.
type StateMachine struct {
	data map[string]string
	log  []Command
	// restored counts commands applied before the snapshot this machine
	// was restored from; Len reports restored + len(log) so the applied
	// count survives restarts even though the command log itself is not
	// part of the snapshot (the replication layer's durable decision log
	// already owns that history).
	restored int
}

// NewStateMachine returns an empty state machine.
func NewStateMachine() *StateMachine {
	return &StateMachine{data: make(map[string]string)}
}

// Apply executes one command.
func (sm *StateMachine) Apply(cmd Command) {
	switch cmd.Op {
	case OpPut:
		sm.data[cmd.Key] = cmd.Value
	case OpDelete:
		delete(sm.data, cmd.Key)
	}
	sm.log = append(sm.log, cmd)
}

// Get reads a key.
func (sm *StateMachine) Get(key string) (string, bool) {
	v, ok := sm.data[key]
	return v, ok
}

// Len returns the number of applied commands, including those applied
// before a snapshot this machine was restored from.
func (sm *StateMachine) Len() int { return sm.restored + len(sm.log) }

// AppendSnapshot appends a deterministic encoding of the durable state
// — the applied-command count and the key-value map, sorted — to dst.
// The command log is deliberately excluded: it exists for tests and
// debugging, and the replication layer's decision log is the durable
// history.
func (sm *StateMachine) AppendSnapshot(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(sm.Len()))
	keys := make([]string, 0, len(sm.data))
	for k := range sm.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		v := sm.data[k]
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// RestoreSnapshot replaces the machine's state with a snapshot produced
// by AppendSnapshot. An empty input restores the empty machine.
func (sm *StateMachine) RestoreSnapshot(b []byte) error {
	if len(b) == 0 {
		sm.data, sm.log, sm.restored = make(map[string]string), nil, 0
		return nil
	}
	applied, n := binary.Uvarint(b)
	if n <= 0 {
		return errors.New("kvstore: corrupt snapshot: applied count")
	}
	b = b[n:]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return errors.New("kvstore: corrupt snapshot: key count")
	}
	b = b[n:]
	// Allocate-after-validate (holint:allocbound): every entry costs at
	// least two bytes (two uvarint length prefixes), so a count beyond
	// the remaining bytes is corruption — sizing the map from it would
	// let a torn or hostile snapshot buy an arbitrary allocation.
	if count > uint64(len(b)) {
		return errors.New("kvstore: corrupt snapshot: key count exceeds payload")
	}
	data := make(map[string]string, count)
	take := func() (string, bool) {
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return "", false
		}
		s := string(b[n : n+int(l)])
		b = b[n+int(l):]
		return s, true
	}
	for i := uint64(0); i < count; i++ {
		k, ok1 := take()
		v, ok2 := take()
		if !ok1 || !ok2 {
			return errors.New("kvstore: corrupt snapshot: entry")
		}
		data[k] = v
	}
	if len(b) != 0 {
		return errors.New("kvstore: corrupt snapshot: trailing bytes")
	}
	sm.data, sm.log, sm.restored = data, nil, int(applied)
	return nil
}

// Fingerprint summarizes the state deterministically, for convergence
// checks across replicas.
func (sm *StateMachine) Fingerprint() string {
	keys := make([]string, 0, len(sm.data))
	for k := range sm.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(sm.data[k])
		b.WriteByte(';')
	}
	return b.String()
}

// Replica is one member of the replicated store.
type Replica struct {
	ID core.ProcessID
	SM *StateMachine
}

// Cluster replicates a KV store across n replicas through the shared
// rsm engine (batched slots, optional pipelining, client sessions).
type Cluster struct {
	n        int
	engine   *rsm.Engine[Command]
	replicas []*Replica
}

// ErrSlotUndecided is returned when replication cannot complete within
// its budgets — a slot's consensus instance never decided, or Drain ran
// out of slots with commands still pending. It is rsm's sentinel, so
// errors.Is works across the whole service stack.
var ErrSlotUndecided = rsm.ErrSlotUndecided

// NewCluster creates a cluster of n replicas deciding slots with alg under
// the per-slot HO provider. maxRounds bounds each slot's instance. Slots
// batch up to rsm.MaxBatch commands and run unpipelined; use
// NewClusterTuned for the service-layer knobs.
func NewCluster(n int, alg core.Algorithm, provider func(slot int) core.HOProvider, maxRounds core.Round) (*Cluster, error) {
	return NewClusterTuned(n, alg, provider, maxRounds, rsm.Tuning{})
}

// NewClusterTuned is NewCluster with explicit batch size, pipeline depth
// and sweep parallelism.
func NewClusterTuned(n int, alg core.Algorithm, provider func(slot int) core.HOProvider,
	maxRounds core.Round, tune rsm.Tuning) (*Cluster, error) {
	c := &Cluster{n: n}
	engine, err := rsm.New(rsm.Config{
		N: n, Algorithm: alg, Provider: provider, MaxRounds: maxRounds,
		BatchSize: tune.BatchSize, Pipeline: tune.Pipeline, Parallel: tune.Parallel,
	}, func(replica int, cmd Command) {
		c.replicas[replica].SM.Apply(cmd)
	})
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	c.replicas = make([]*Replica, n)
	for i := range c.replicas {
		c.replicas[i] = &Replica{ID: core.ProcessID(i), SM: NewStateMachine()}
	}
	c.engine = engine
	return c, nil
}

// Replica returns replica i.
func (c *Cluster) Replica(i int) *Replica { return c.replicas[i] }

// Engine exposes the underlying replication engine (stats, latencies,
// session-level submission).
func (c *Cluster) Engine() *rsm.Engine[Command] { return c.engine }

// Slots returns the number of decided slots.
func (c *Cluster) Slots() int { return c.engine.Stats().Slots }

// Submit accepts a command at the contact replica and enters it into the
// shared replicated log, as Paxos-style replicated state machines forward
// client commands. The contact must be a valid replica id; each contact
// runs its own client session, so every Submit is a fresh command (use
// Engine().Submit to model retries of one command).
func (c *Cluster) Submit(contact int, cmd Command) error {
	if contact < 0 || contact >= c.n {
		return fmt.Errorf("kvstore: contact replica %d out of range [0, %d)", contact, c.n)
	}
	c.engine.SubmitNext(rsm.ClientID(contact), cmd)
	return nil
}

// PendingTotal counts queued-but-unreplicated commands.
func (c *Cluster) PendingTotal() int { return c.engine.Pending() }

// DecideSlot decides the next window of slots (a single slot unless the
// cluster is pipelined) and applies the chosen commands everywhere, in
// order. It returns the commands applied by this call — empty when the
// window decided only a no-op batch. On a window failure the returned
// slice still holds the decided prefix that WAS applied before the
// failing slot (alongside the error), mirroring Drain's partial count.
func (c *Cluster) DecideSlot() ([]Command, error) {
	before := len(c.replicas[0].SM.log)
	_, err := c.engine.DecideWindow()
	applied := c.replicas[0].SM.log[before:]
	out := make([]Command, len(applied))
	copy(out, applied)
	return out, err
}

// Drain decides slots until no commands are pending or the slot budget is
// exhausted, returning the number of commands applied. Every undecided
// path satisfies errors.Is(err, ErrSlotUndecided).
func (c *Cluster) Drain(maxSlots int) (int, error) {
	return c.engine.Drain(maxSlots)
}

// WorkloadCommand maps a generated workload operation (rsm.RunWorkload)
// to a KV command: reads become linearizable OpGets through the log,
// writes become puts with an occasional delete. Shared by the E10/E11
// experiments and cmd/hoload so their workloads stay key-for-key
// comparable.
func WorkloadCommand(op rsm.Op) Command {
	key := workloadKey(op.Key)
	switch {
	case !op.Write:
		return Command{Op: OpGet, Key: key}
	case op.Key%11 == 10:
		return Command{Op: OpDelete, Key: key}
	default:
		return Command{Op: OpPut, Key: key, Value: fmt.Sprintf("c%d#%d", op.Client, op.Seq)}
	}
}

// workloadKey names workload key index k; WorkloadCommand and
// WorkloadRouteKey must agree on it so a generated op and the command
// built from it route to the same shard.
func workloadKey(k int) string { return fmt.Sprintf("k%03d", k) }

// Converged reports whether all replicas have identical state.
func (c *Cluster) Converged() bool {
	want := c.replicas[0].SM.Fingerprint()
	for _, r := range c.replicas[1:] {
		if r.SM.Fingerprint() != want {
			return false
		}
	}
	return true
}
