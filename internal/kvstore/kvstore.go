// Package kvstore builds a replicated key-value store on top of repeated
// consensus in the Heard-Of model — the kind of application the paper's
// introduction motivates (consensus "appears when implementing atomic
// broadcast, group membership, etc.").
//
// Each log slot is decided by one consensus instance (any core.Algorithm;
// OneThirdRule by default). Replicas propose the oldest command in their
// pending queue; the decided command is applied to every replica's state
// machine in slot order, so all replicas converge to the same state no
// matter which transmission faults the environment inflicts — provided
// each slot's instance eventually meets its liveness predicate.
package kvstore

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"heardof/internal/core"
)

// Op is a state machine operation.
type Op int

const (
	// OpPut sets a key.
	OpPut Op = iota + 1
	// OpDelete removes a key.
	OpDelete
)

// Command is one replicated operation.
type Command struct {
	Op    Op
	Key   string
	Value string
}

// String implements fmt.Stringer.
func (c Command) String() string {
	if c.Op == OpDelete {
		return "del " + c.Key
	}
	return "put " + c.Key + "=" + c.Value
}

// StateMachine is the deterministic KV state machine.
type StateMachine struct {
	data map[string]string
	log  []Command
}

// NewStateMachine returns an empty state machine.
func NewStateMachine() *StateMachine {
	return &StateMachine{data: make(map[string]string)}
}

// Apply executes one command.
func (sm *StateMachine) Apply(cmd Command) {
	switch cmd.Op {
	case OpPut:
		sm.data[cmd.Key] = cmd.Value
	case OpDelete:
		delete(sm.data, cmd.Key)
	}
	sm.log = append(sm.log, cmd)
}

// Get reads a key.
func (sm *StateMachine) Get(key string) (string, bool) {
	v, ok := sm.data[key]
	return v, ok
}

// Len returns the number of applied commands.
func (sm *StateMachine) Len() int { return len(sm.log) }

// Fingerprint summarizes the state deterministically, for convergence
// checks across replicas.
func (sm *StateMachine) Fingerprint() string {
	keys := make([]string, 0, len(sm.data))
	for k := range sm.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(sm.data[k])
		b.WriteByte(';')
	}
	return b.String()
}

// noOpValue is proposed by replicas with empty queues. It must compare
// larger than every real command index: OneThirdRule falls back to the
// smallest received value, so a smaller sentinel would starve real
// commands whenever any replica's queue is empty.
const noOpValue core.Value = math.MaxInt64

// Replica is one member of the replicated store.
type Replica struct {
	ID      core.ProcessID
	SM      *StateMachine
	pending []core.Value // command-table indexes awaiting replication
}

// Cluster replicates a KV store across n replicas using one consensus
// instance per log slot.
type Cluster struct {
	n         int
	algorithm core.Algorithm
	provider  func(slot int) core.HOProvider
	maxRounds core.Round

	table    []Command // append-only command table; core.Value = index
	replicas []*Replica
	chosen   []core.Value
}

// ErrSlotUndecided is returned when a slot's consensus instance exhausts
// its round budget (the environment never satisfied the predicate).
var ErrSlotUndecided = errors.New("kvstore: slot undecided within the round budget")

// NewCluster creates a cluster of n replicas deciding slots with alg under
// the per-slot HO provider. maxRounds bounds each slot's instance.
func NewCluster(n int, alg core.Algorithm, provider func(slot int) core.HOProvider, maxRounds core.Round) (*Cluster, error) {
	if n < 1 || n > core.MaxProcesses {
		return nil, fmt.Errorf("kvstore: n = %d out of range", n)
	}
	if alg == nil || provider == nil {
		return nil, errors.New("kvstore: nil algorithm or provider")
	}
	c := &Cluster{
		n:         n,
		algorithm: alg,
		provider:  provider,
		maxRounds: maxRounds,
		replicas:  make([]*Replica, n),
	}
	for i := range c.replicas {
		c.replicas[i] = &Replica{ID: core.ProcessID(i), SM: NewStateMachine()}
	}
	return c, nil
}

// Replica returns replica i.
func (c *Cluster) Replica(i int) *Replica { return c.replicas[i] }

// Slots returns the number of decided slots.
func (c *Cluster) Slots() int { return len(c.chosen) }

// Submit accepts a command at the contact replica and forwards it to
// every replica's pending queue, as Paxos-style replicated state machines
// do: with only a minority proposing a command, OneThirdRule's
// all-but-⌊n/3⌋ rule would let the idle majority's no-ops win every slot.
// Forwarding makes all queues identical, so each slot decides the oldest
// outstanding command.
func (c *Cluster) Submit(contact int, cmd Command) {
	_ = c.replicas[contact] // the contact only validates the replica id
	c.table = append(c.table, cmd)
	idx := core.Value(len(c.table) - 1)
	for _, r := range c.replicas {
		r.pending = append(r.pending, idx)
	}
}

// PendingTotal counts queued-but-unreplicated commands.
func (c *Cluster) PendingTotal() int {
	total := 0
	for _, r := range c.replicas {
		total += len(r.pending)
	}
	return total
}

// DecideSlot runs one consensus instance for the next slot and applies the
// chosen command everywhere. It returns the applied command (ok reports
// whether the slot chose a real command rather than a no-op).
func (c *Cluster) DecideSlot() (Command, bool, error) {
	slot := len(c.chosen)
	initial := make([]core.Value, c.n)
	for i, r := range c.replicas {
		if len(r.pending) > 0 {
			initial[i] = r.pending[0]
		} else {
			initial[i] = noOpValue
		}
	}
	ru, err := core.NewRunner(c.algorithm, initial, c.provider(slot))
	if err != nil {
		return Command{}, false, err
	}
	tr, err := ru.Run(c.maxRounds)
	if err != nil {
		return Command{}, false, fmt.Errorf("slot %d: %w", slot, ErrSlotUndecided)
	}
	if err := tr.CheckConsensusSafety(); err != nil {
		return Command{}, false, fmt.Errorf("slot %d: %w", slot, err)
	}
	chosen := tr.Decisions[0].Value
	c.chosen = append(c.chosen, chosen)

	if chosen == noOpValue {
		return Command{}, false, nil
	}
	if chosen < 0 || int(chosen) >= len(c.table) {
		return Command{}, false, fmt.Errorf("slot %d: decided an unknown command index %d", slot, chosen)
	}
	cmd := c.table[chosen]
	for _, r := range c.replicas {
		r.SM.Apply(cmd)
		// The chosen command leaves whatever queue holds it.
		for k, idx := range r.pending {
			if idx == chosen {
				r.pending = append(r.pending[:k], r.pending[k+1:]...)
				break
			}
		}
	}
	return cmd, true, nil
}

// Drain decides slots until no commands are pending or the slot budget is
// exhausted, returning the number of commands applied.
func (c *Cluster) Drain(maxSlots int) (int, error) {
	applied := 0
	for s := 0; s < maxSlots && c.PendingTotal() > 0; s++ {
		_, ok, err := c.DecideSlot()
		if err != nil {
			return applied, err
		}
		if ok {
			applied++
		}
	}
	if c.PendingTotal() > 0 {
		return applied, fmt.Errorf("kvstore: %d commands still pending after %d slots",
			c.PendingTotal(), maxSlots)
	}
	return applied, nil
}

// Converged reports whether all replicas have identical state.
func (c *Cluster) Converged() bool {
	want := c.replicas[0].SM.Fingerprint()
	for _, r := range c.replicas[1:] {
		if r.SM.Fingerprint() != want {
			return false
		}
	}
	return true
}
