package kvstore

import (
	"encoding/binary"
	"errors"
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/rsm"
	"heardof/internal/xrand"
)

func fullProvider(int) core.HOProvider { return adversary.Full{} }

func newTestCluster(t *testing.T, n int, provider func(int) core.HOProvider) *Cluster {
	t.Helper()
	c, err := NewCluster(n, otr.Algorithm{}, provider, 100)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustSubmit(t *testing.T, c *Cluster, contact int, cmd Command) {
	t.Helper()
	if err := c.Submit(contact, cmd); err != nil {
		t.Fatal(err)
	}
}

func TestStateMachineBasics(t *testing.T) {
	sm := NewStateMachine()
	sm.Apply(Command{Op: OpPut, Key: "a", Value: "1"})
	sm.Apply(Command{Op: OpPut, Key: "b", Value: "2"})
	if v, ok := sm.Get("a"); !ok || v != "1" {
		t.Error("get after put failed")
	}
	sm.Apply(Command{Op: OpDelete, Key: "a"})
	if _, ok := sm.Get("a"); ok {
		t.Error("get after delete succeeded")
	}
	if sm.Len() != 3 {
		t.Errorf("log length = %d, want 3", sm.Len())
	}
	if sm.Fingerprint() != "b=2;" {
		t.Errorf("fingerprint = %q", sm.Fingerprint())
	}
}

func TestCommandString(t *testing.T) {
	if (Command{Op: OpPut, Key: "k", Value: "v"}).String() != "put k=v" {
		t.Error("put string wrong")
	}
	if (Command{Op: OpDelete, Key: "k"}).String() != "del k" {
		t.Error("del string wrong")
	}
}

func TestReplicationFaultFree(t *testing.T) {
	c := newTestCluster(t, 4, fullProvider)
	mustSubmit(t, c, 0, Command{Op: OpPut, Key: "x", Value: "1"})
	mustSubmit(t, c, 1, Command{Op: OpPut, Key: "y", Value: "2"})
	mustSubmit(t, c, 2, Command{Op: OpDelete, Key: "x"})
	applied, err := c.Drain(20)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Errorf("applied %d commands, want 3", applied)
	}
	if !c.Converged() {
		t.Fatal("replicas diverged")
	}
	if _, ok := c.Replica(3).SM.Get("x"); ok {
		t.Error("x should be deleted everywhere")
	}
	if v, _ := c.Replica(0).SM.Get("y"); v != "2" {
		t.Error("y missing")
	}
}

// TestSubmitInvalidContact is the regression test for the panic this PR
// fixes: Submit used to index c.replicas[contact] unchecked, so a bad
// contact id crashed the process instead of returning an error.
func TestSubmitInvalidContact(t *testing.T) {
	c := newTestCluster(t, 3, fullProvider)
	for _, contact := range []int{-1, 3, 100} {
		if err := c.Submit(contact, Command{Op: OpPut, Key: "k", Value: "v"}); err == nil {
			t.Errorf("contact %d accepted", contact)
		}
	}
	if c.PendingTotal() != 0 {
		t.Errorf("rejected submissions left %d pending commands", c.PendingTotal())
	}
	// Valid contacts still work after rejections.
	mustSubmit(t, c, 2, Command{Op: OpPut, Key: "k", Value: "v"})
	if _, err := c.Drain(5); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationUnderTransmissionLoss(t *testing.T) {
	// DT faults between replicas: each slot's instance rides out 20% loss
	// (more rounds, same result). All replicas still converge.
	rng := xrand.New(42)
	provider := func(int) core.HOProvider {
		return &adversary.TransmissionLoss{Rate: 0.2, RNG: rng.Fork()}
	}
	c := newTestCluster(t, 5, provider)
	for i := 0; i < 12; i++ {
		key := string(rune('a' + i%4))
		mustSubmit(t, c, i%5, Command{Op: OpPut, Key: key, Value: key})
	}
	if _, err := c.Drain(60); err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Fatal("replicas diverged under loss")
	}
}

func TestBatchingAmortizesSlots(t *testing.T) {
	// The acceptance bound of this PR at the kvstore layer: M commands
	// drain in ≤ ⌈M/63⌉ + 1 slots, versus exactly M slots before rsm.
	c := newTestCluster(t, 4, fullProvider)
	const cmds = 150
	for i := 0; i < cmds; i++ {
		mustSubmit(t, c, i%4, Command{Op: OpPut, Key: "k", Value: "v"})
	}
	applied, err := c.Drain(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if applied != cmds {
		t.Fatalf("applied %d of %d", applied, cmds)
	}
	if bound := (cmds+62)/63 + 1; c.Slots() > bound {
		t.Errorf("used %d slots for %d commands, want ≤ %d", c.Slots(), cmds, bound)
	}
}

func TestPipelinedClusterConverges(t *testing.T) {
	rng := xrand.New(9)
	provider := func(int) core.HOProvider {
		return &adversary.TransmissionLoss{Rate: 0.15, RNG: rng.Fork()}
	}
	c, err := NewClusterTuned(5, otr.Algorithm{}, provider, 300,
		rsm.Tuning{BatchSize: 4, Pipeline: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		mustSubmit(t, c, i%5, Command{Op: OpPut, Key: string(rune('a' + i%7)), Value: "v"})
	}
	applied, err := c.Drain(100)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 40 {
		t.Errorf("applied %d of 40", applied)
	}
	if !c.Converged() {
		t.Fatal("pipelined replicas diverged")
	}
	st := c.Engine().Stats()
	if st.WallRounds >= st.TotalRounds {
		t.Errorf("pipelining bought nothing: wall %d, total %d", st.WallRounds, st.TotalRounds)
	}
}

func TestNoOpSlots(t *testing.T) {
	c := newTestCluster(t, 3, fullProvider)
	cmds, err := c.DecideSlot()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 0 {
		t.Errorf("empty cluster decided real commands: %v", cmds)
	}
	if c.Slots() != 1 {
		t.Errorf("slots = %d, want 1", c.Slots())
	}
}

func TestUndecidedSlotReportsError(t *testing.T) {
	c, err := NewCluster(3, otr.Algorithm{}, func(int) core.HOProvider {
		return adversary.Silence{}
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, c, 0, Command{Op: OpPut, Key: "k", Value: "v"})
	if _, err := c.DecideSlot(); !errors.Is(err, ErrSlotUndecided) {
		t.Errorf("error = %v, want ErrSlotUndecided", err)
	}
}

// TestDrainBudgetKeepsSentinel is the regression test for the lost
// sentinel this PR fixes: Drain's budget-exhausted failure was a bare
// fmt.Errorf, so errors.Is(err, ErrSlotUndecided) was false on that path.
func TestDrainBudgetKeepsSentinel(t *testing.T) {
	c, err := NewClusterTuned(3, otr.Algorithm{}, fullProvider, 50, rsm.Tuning{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustSubmit(t, c, 0, Command{Op: OpPut, Key: "k", Value: "v"})
	}
	applied, err := c.Drain(2)
	if !errors.Is(err, ErrSlotUndecided) {
		t.Errorf("error = %v, want ErrSlotUndecided", err)
	}
	if applied != 2 || c.PendingTotal() != 3 {
		t.Errorf("applied %d pending %d, want 2 and 3", applied, c.PendingTotal())
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewCluster(0, otr.Algorithm{}, fullProvider, 10); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewCluster(3, nil, fullProvider, 10); err == nil {
		t.Error("expected error for nil algorithm")
	}
	if _, err := NewCluster(3, otr.Algorithm{}, nil, 10); err == nil {
		t.Error("expected error for nil provider")
	}
}

func TestConvergencePropertyManyWorkloads(t *testing.T) {
	// Property-style: random workloads under random per-slot loss always
	// converge (or fail to decide, never diverge).
	for seed := uint64(0); seed < 30; seed++ {
		rng := xrand.New(seed)
		provider := func(int) core.HOProvider {
			return &adversary.TransmissionLoss{Rate: 0.15, RNG: rng.Fork()}
		}
		c := newTestCluster(t, 4, provider)
		ops := 4 + rng.Intn(10)
		for i := 0; i < ops; i++ {
			key := string(rune('a' + rng.Intn(5)))
			if rng.Bool(0.25) {
				mustSubmit(t, c, rng.Intn(4), Command{Op: OpDelete, Key: key})
			} else {
				mustSubmit(t, c, rng.Intn(4), Command{Op: OpPut, Key: key, Value: key + key})
			}
		}
		if _, err := c.Drain(120); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !c.Converged() {
			t.Fatalf("seed %d: replicas diverged", seed)
		}
	}
}

func TestLogsIdenticalAcrossReplicas(t *testing.T) {
	c := newTestCluster(t, 3, fullProvider)
	mustSubmit(t, c, 0, Command{Op: OpPut, Key: "a", Value: "1"})
	mustSubmit(t, c, 1, Command{Op: OpPut, Key: "a", Value: "2"})
	if _, err := c.Drain(10); err != nil {
		t.Fatal(err)
	}
	// Whatever the interleaving, all replicas applied the same commands
	// in the same order: the final value of "a" is identical (already
	// covered by Converged) and the logs have equal length and content.
	l0 := c.Replica(0).SM.log
	for r := 1; r < 3; r++ {
		lr := c.Replica(r).SM.log
		if len(lr) != len(l0) {
			t.Fatalf("log lengths differ: %d vs %d", len(lr), len(l0))
		}
		for i := range l0 {
			if lr[i] != l0[i] {
				t.Fatalf("logs diverge at %d: %v vs %v", i, lr[i], l0[i])
			}
		}
	}
}

func TestDecideSlotReturnsAppliedBatch(t *testing.T) {
	c := newTestCluster(t, 3, fullProvider)
	mustSubmit(t, c, 0, Command{Op: OpPut, Key: "a", Value: "1"})
	mustSubmit(t, c, 1, Command{Op: OpPut, Key: "b", Value: "2"})
	cmds, err := c.DecideSlot()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 2 {
		t.Fatalf("batch = %v, want both commands in one slot", cmds)
	}
	if cmds[0].Key != "a" || cmds[1].Key != "b" {
		t.Errorf("batch order %v, want submission order", cmds)
	}
}

func TestStateMachineSnapshotRoundTrip(t *testing.T) {
	sm := NewStateMachine()
	sm.Apply(Command{Op: OpPut, Key: "a", Value: "1"})
	sm.Apply(Command{Op: OpPut, Key: "b", Value: "2"})
	sm.Apply(Command{Op: OpDelete, Key: "a"})
	sm.Apply(Command{Op: OpGet, Key: "b"})

	snap := sm.AppendSnapshot(nil)
	rec := NewStateMachine()
	if err := rec.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if rec.Fingerprint() != sm.Fingerprint() {
		t.Fatalf("fingerprint %q != %q", rec.Fingerprint(), sm.Fingerprint())
	}
	if rec.Len() != sm.Len() {
		t.Fatalf("applied count %d != %d", rec.Len(), sm.Len())
	}
	// Applying on top of the restored machine keeps counting from the
	// snapshot's total.
	rec.Apply(Command{Op: OpPut, Key: "c", Value: "3"})
	if rec.Len() != sm.Len()+1 {
		t.Fatalf("post-restore Len = %d, want %d", rec.Len(), sm.Len()+1)
	}

	if err := NewStateMachine().RestoreSnapshot(nil); err != nil {
		t.Fatalf("empty snapshot rejected: %v", err)
	}
	for _, b := range [][]byte{{0x80}, snap[:len(snap)-1], append(append([]byte{}, snap...), 0)} {
		if err := NewStateMachine().RestoreSnapshot(b); err == nil {
			t.Errorf("RestoreSnapshot(%x) accepted corrupt snapshot", b)
		}
	}
}

// A hostile or torn snapshot header must not buy an allocation: a key
// count far beyond the remaining payload has to be rejected BEFORE the
// map is sized from it (allocate-after-validate; found by holint's
// allocbound analyzer, the PR-6 fuzz bug class on the snapshot path).
func TestRestoreSnapshotRejectsOversizedKeyCount(t *testing.T) {
	hostile := binary.AppendUvarint(nil, 7)        // plausible applied count
	hostile = binary.AppendUvarint(hostile, 1<<40) // key count with no bytes behind it
	if err := NewStateMachine().RestoreSnapshot(hostile); err == nil {
		t.Fatal("RestoreSnapshot accepted a 2^40 key count with an empty payload")
	}
	// The bound must not reject legitimate snapshots whose entries are
	// minimal (empty keys and values: two bytes per entry).
	sm := NewStateMachine()
	sm.Apply(Command{Op: OpPut, Key: "", Value: ""})
	rec := NewStateMachine()
	if err := rec.RestoreSnapshot(sm.AppendSnapshot(nil)); err != nil {
		t.Fatalf("minimal-entry snapshot rejected: %v", err)
	}
	if rec.Fingerprint() != sm.Fingerprint() {
		t.Fatalf("fingerprint %q != %q", rec.Fingerprint(), sm.Fingerprint())
	}
}
