package kvstore

import (
	"errors"
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/xrand"
)

func fullProvider(int) core.HOProvider { return adversary.Full{} }

func newTestCluster(t *testing.T, n int, provider func(int) core.HOProvider) *Cluster {
	t.Helper()
	c, err := NewCluster(n, otr.Algorithm{}, provider, 100)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStateMachineBasics(t *testing.T) {
	sm := NewStateMachine()
	sm.Apply(Command{Op: OpPut, Key: "a", Value: "1"})
	sm.Apply(Command{Op: OpPut, Key: "b", Value: "2"})
	if v, ok := sm.Get("a"); !ok || v != "1" {
		t.Error("get after put failed")
	}
	sm.Apply(Command{Op: OpDelete, Key: "a"})
	if _, ok := sm.Get("a"); ok {
		t.Error("get after delete succeeded")
	}
	if sm.Len() != 3 {
		t.Errorf("log length = %d, want 3", sm.Len())
	}
	if sm.Fingerprint() != "b=2;" {
		t.Errorf("fingerprint = %q", sm.Fingerprint())
	}
}

func TestCommandString(t *testing.T) {
	if (Command{Op: OpPut, Key: "k", Value: "v"}).String() != "put k=v" {
		t.Error("put string wrong")
	}
	if (Command{Op: OpDelete, Key: "k"}).String() != "del k" {
		t.Error("del string wrong")
	}
}

func TestReplicationFaultFree(t *testing.T) {
	c := newTestCluster(t, 4, fullProvider)
	c.Submit(0, Command{Op: OpPut, Key: "x", Value: "1"})
	c.Submit(1, Command{Op: OpPut, Key: "y", Value: "2"})
	c.Submit(2, Command{Op: OpDelete, Key: "x"})
	applied, err := c.Drain(20)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Errorf("applied %d commands, want 3", applied)
	}
	if !c.Converged() {
		t.Fatal("replicas diverged")
	}
	if _, ok := c.Replica(3).SM.Get("x"); ok {
		t.Error("x should be deleted everywhere")
	}
	if v, _ := c.Replica(0).SM.Get("y"); v != "2" {
		t.Error("y missing")
	}
}

func TestReplicationUnderTransmissionLoss(t *testing.T) {
	// DT faults between replicas: each slot's instance rides out 20% loss
	// (more rounds, same result). All replicas still converge.
	rng := xrand.New(42)
	provider := func(int) core.HOProvider {
		return &adversary.TransmissionLoss{Rate: 0.2, RNG: rng.Fork()}
	}
	c := newTestCluster(t, 5, provider)
	for i := 0; i < 12; i++ {
		key := string(rune('a' + i%4))
		c.Submit(i%5, Command{Op: OpPut, Key: key, Value: key})
	}
	if _, err := c.Drain(60); err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Fatal("replicas diverged under loss")
	}
}

func TestNoOpSlots(t *testing.T) {
	c := newTestCluster(t, 3, fullProvider)
	cmd, ok, err := c.DecideSlot()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("empty cluster decided a real command: %v", cmd)
	}
	if c.Slots() != 1 {
		t.Errorf("slots = %d, want 1", c.Slots())
	}
}

func TestUndecidedSlotReportsError(t *testing.T) {
	c, err := NewCluster(3, otr.Algorithm{}, func(int) core.HOProvider {
		return adversary.Silence{}
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(0, Command{Op: OpPut, Key: "k", Value: "v"})
	_, _, err = c.DecideSlot()
	if !errors.Is(err, ErrSlotUndecided) {
		t.Errorf("error = %v, want ErrSlotUndecided", err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewCluster(0, otr.Algorithm{}, fullProvider, 10); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewCluster(3, nil, fullProvider, 10); err == nil {
		t.Error("expected error for nil algorithm")
	}
	if _, err := NewCluster(3, otr.Algorithm{}, nil, 10); err == nil {
		t.Error("expected error for nil provider")
	}
}

func TestConvergencePropertyManyWorkloads(t *testing.T) {
	// Property-style: random workloads under random per-slot loss always
	// converge (or fail to decide, never diverge).
	for seed := uint64(0); seed < 30; seed++ {
		rng := xrand.New(seed)
		provider := func(int) core.HOProvider {
			return &adversary.TransmissionLoss{Rate: 0.15, RNG: rng.Fork()}
		}
		c := newTestCluster(t, 4, provider)
		ops := 4 + rng.Intn(10)
		for i := 0; i < ops; i++ {
			key := string(rune('a' + rng.Intn(5)))
			if rng.Bool(0.25) {
				c.Submit(rng.Intn(4), Command{Op: OpDelete, Key: key})
			} else {
				c.Submit(rng.Intn(4), Command{Op: OpPut, Key: key, Value: key + key})
			}
		}
		if _, err := c.Drain(120); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !c.Converged() {
			t.Fatalf("seed %d: replicas diverged", seed)
		}
	}
}

func TestLogsIdenticalAcrossReplicas(t *testing.T) {
	c := newTestCluster(t, 3, fullProvider)
	c.Submit(0, Command{Op: OpPut, Key: "a", Value: "1"})
	c.Submit(1, Command{Op: OpPut, Key: "a", Value: "2"})
	if _, err := c.Drain(10); err != nil {
		t.Fatal(err)
	}
	// Whatever the interleaving, all replicas applied the same commands
	// in the same order: the final value of "a" is identical (already
	// covered by Converged) and the logs have equal length and content.
	l0 := c.Replica(0).SM.log
	for r := 1; r < 3; r++ {
		lr := c.Replica(r).SM.log
		if len(lr) != len(l0) {
			t.Fatalf("log lengths differ: %d vs %d", len(lr), len(l0))
		}
		for i := range l0 {
			if lr[i] != l0[i] {
				t.Fatalf("logs diverge at %d: %v vs %v", i, lr[i], l0[i])
			}
		}
	}
}
