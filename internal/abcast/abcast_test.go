package abcast

import (
	"errors"
	"fmt"
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/rsm"
	"heardof/internal/xrand"
)

func fullProvider(int) core.HOProvider { return adversary.Full{} }

func newBroadcaster(t *testing.T, n int, provider func(int) core.HOProvider) *Broadcaster {
	t.Helper()
	b, err := New(n, otr.Algorithm{}, provider, 200)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBatchingDeliversEverythingInOneSlot(t *testing.T) {
	b := newBroadcaster(t, 4, fullProvider)
	for i := 0; i < 10; i++ {
		b.Broadcast(core.ProcessID(i%4), fmt.Sprintf("m%d", i))
	}
	count, err := b.DecideSlot()
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("batch delivered %d messages, want 10", count)
	}
	if b.Pending() != 0 {
		t.Errorf("pending = %d after full batch", b.Pending())
	}
	got := b.Delivered()
	for i, m := range got {
		if m.Payload != fmt.Sprintf("m%d", i) {
			t.Errorf("delivery %d = %q, want m%d (submission order)", i, m.Payload, i)
		}
	}
}

func TestTotalOrderStableUnderLoss(t *testing.T) {
	rng := xrand.New(3)
	provider := func(int) core.HOProvider {
		return &adversary.TransmissionLoss{Rate: 0.25, RNG: rng.Fork()}
	}
	b := newBroadcaster(t, 5, provider)
	const msgs = 40
	for i := 0; i < msgs; i++ {
		b.Broadcast(core.ProcessID(i%5), fmt.Sprintf("m%d", i))
	}
	total, err := b.Drain(200)
	if err != nil {
		t.Fatal(err)
	}
	if total != msgs {
		t.Errorf("delivered %d, want %d (validity)", total, msgs)
	}
	// Integrity: each message delivered exactly once.
	seen := make(map[string]bool, msgs)
	for _, m := range b.Delivered() {
		if seen[m.Payload] {
			t.Fatalf("duplicate delivery of %q", m.Payload)
		}
		seen[m.Payload] = true
	}
	if len(seen) != msgs {
		t.Errorf("unique deliveries = %d, want %d", len(seen), msgs)
	}
}

func TestAmortization(t *testing.T) {
	// A burst of 50 messages takes far fewer than 50 slots (batching).
	b := newBroadcaster(t, 4, fullProvider)
	for i := 0; i < 50; i++ {
		b.Broadcast(0, fmt.Sprintf("m%d", i))
	}
	if _, err := b.Drain(20); err != nil {
		t.Fatal(err)
	}
	if b.Slots() > 2 {
		t.Errorf("used %d slots for a 50-message burst; batching should need ≤ 2", b.Slots())
	}
}

func TestWindowLimit(t *testing.T) {
	// More than 63 pending messages need multiple slots.
	b := newBroadcaster(t, 3, fullProvider)
	const msgs = 150
	for i := 0; i < msgs; i++ {
		b.Broadcast(0, fmt.Sprintf("m%d", i))
	}
	total, err := b.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if total != msgs {
		t.Errorf("delivered %d, want %d", total, msgs)
	}
	if b.Slots() != 3 { // ⌈150/63⌉
		t.Errorf("slots = %d, want 3", b.Slots())
	}
	// Order is still global submission order.
	for i, m := range b.Delivered() {
		if m.Payload != fmt.Sprintf("m%d", i) {
			t.Fatalf("delivery %d = %q out of order", i, m.Payload)
		}
	}
}

func TestEmptySlot(t *testing.T) {
	b := newBroadcaster(t, 3, fullProvider)
	count, err := b.DecideSlot()
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("empty slot delivered %d messages", count)
	}
}

func TestUndecidedSlot(t *testing.T) {
	b, err := New(3, otr.Algorithm{}, func(int) core.HOProvider {
		return adversary.Silence{}
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b.Broadcast(0, "m")
	if _, err := b.DecideSlot(); !errors.Is(err, ErrSlotUndecided) {
		t.Errorf("error = %v, want ErrSlotUndecided", err)
	}
	if _, err := b.Drain(3); !errors.Is(err, ErrSlotUndecided) {
		t.Errorf("Drain error = %v, want ErrSlotUndecided", err)
	}
}

// TestDrainBudgetKeepsSentinel is the regression test for the lost
// sentinel this PR fixes: Drain's budget-exhausted failure was a bare
// fmt.Errorf, so errors.Is(err, ErrSlotUndecided) was false on that path.
func TestDrainBudgetKeepsSentinel(t *testing.T) {
	b, err := NewTuned(3, otr.Algorithm{}, fullProvider, 50, rsm.Tuning{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.Broadcast(0, fmt.Sprintf("m%d", i))
	}
	delivered, err := b.Drain(2)
	if !errors.Is(err, ErrSlotUndecided) {
		t.Errorf("error = %v, want ErrSlotUndecided", err)
	}
	if delivered != 2 || b.Pending() != 3 {
		t.Errorf("delivered %d pending %d, want 2 and 3", delivered, b.Pending())
	}
}

func TestPipelinedBroadcasterKeepsTotalOrder(t *testing.T) {
	rng := xrand.New(31)
	provider := func(int) core.HOProvider {
		return &adversary.TransmissionLoss{Rate: 0.15, RNG: rng.Fork()}
	}
	b, err := NewTuned(5, otr.Algorithm{}, provider, 300, rsm.Tuning{BatchSize: 8, Pipeline: 4})
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 64
	for i := 0; i < msgs; i++ {
		b.Broadcast(core.ProcessID(i%5), fmt.Sprintf("m%d", i))
	}
	total, err := b.Drain(100)
	if err != nil {
		t.Fatal(err)
	}
	if total != msgs {
		t.Fatalf("delivered %d of %d", total, msgs)
	}
	for i, m := range b.Delivered() {
		if m.Payload != fmt.Sprintf("m%d", i) {
			t.Fatalf("delivery %d = %q out of order under pipelining", i, m.Payload)
		}
	}
	st := b.Engine().Stats()
	if st.WallRounds >= st.TotalRounds {
		t.Errorf("pipelining bought nothing: wall %d, total %d", st.WallRounds, st.TotalRounds)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, otr.Algorithm{}, fullProvider, 10); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := New(3, nil, fullProvider, 10); err == nil {
		t.Error("expected error for nil algorithm")
	}
	if _, err := New(3, otr.Algorithm{}, nil, 10); err == nil {
		t.Error("expected error for nil provider")
	}
}

func TestDeliveredIsACopy(t *testing.T) {
	b := newBroadcaster(t, 3, fullProvider)
	b.Broadcast(0, "x")
	if _, err := b.Drain(5); err != nil {
		t.Fatal(err)
	}
	d := b.Delivered()
	d[0].Payload = "mutated"
	if b.Delivered()[0].Payload != "x" {
		t.Error("Delivered exposed internal state")
	}
}

func TestManySeedsPropertySweep(t *testing.T) {
	// Validity + integrity + order under random workloads and loss.
	for seed := uint64(0); seed < 25; seed++ {
		rng := xrand.New(seed)
		provider := func(int) core.HOProvider {
			return &adversary.TransmissionLoss{Rate: 0.15, RNG: rng.Fork()}
		}
		b := newBroadcaster(t, 4, provider)
		msgs := 5 + rng.Intn(80)
		for i := 0; i < msgs; i++ {
			b.Broadcast(core.ProcessID(rng.Intn(4)), fmt.Sprintf("s%d-m%d", seed, i))
		}
		if _, err := b.Drain(300); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := b.Delivered()
		if len(got) != msgs {
			t.Fatalf("seed %d: delivered %d of %d", seed, len(got), msgs)
		}
		for i, m := range got {
			if m.Payload != fmt.Sprintf("s%d-m%d", seed, i) {
				t.Fatalf("seed %d: delivery %d out of order (%q)", seed, i, m.Payload)
			}
		}
	}
}
