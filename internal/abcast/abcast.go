// Package abcast implements atomic (total-order) broadcast on top of
// repeated consensus in the Heard-Of model — the first application the
// paper's introduction names ("consensus ... appears when implementing
// atomic broadcast").
//
// Messages are a-broadcast by any process and a-delivered by all
// processes in the same total order. The replication mechanics live in
// internal/rsm: each consensus slot decides a BATCH of up to 63 messages
// (the bitmask window codec this package pioneered, now shared with
// kvstore), optionally with several slots pipelined per window, applied
// in order. Liveness per slot is inherited from the underlying
// ⟨algorithm, predicate⟩ pair; safety (total order, integrity) holds
// whenever consensus safety holds.
package abcast

import (
	"fmt"

	"heardof/internal/core"
	"heardof/internal/rsm"
)

// Message is one a-broadcast payload.
type Message struct {
	Sender  core.ProcessID
	Payload string
}

// Broadcaster replicates a totally ordered message log across n
// processes.
type Broadcaster struct {
	engine    *rsm.Engine[Message]
	delivered []Message // the total order, shared by all processes
}

// ErrSlotUndecided is returned when a slot's instance exhausts its round
// budget or Drain runs out of slots with messages pending. It is rsm's
// sentinel, so errors.Is works across the whole service stack.
var ErrSlotUndecided = rsm.ErrSlotUndecided

// New creates a broadcaster over n processes deciding batches with alg
// under the per-slot provider, with default tuning (63-message batches,
// no pipelining). Use NewTuned for the service-layer knobs.
func New(n int, alg core.Algorithm, provider func(slot int) core.HOProvider, maxRounds core.Round) (*Broadcaster, error) {
	return NewTuned(n, alg, provider, maxRounds, rsm.Tuning{})
}

// NewTuned is New with explicit batch size, pipeline depth and sweep
// parallelism.
func NewTuned(n int, alg core.Algorithm, provider func(slot int) core.HOProvider,
	maxRounds core.Round, tune rsm.Tuning) (*Broadcaster, error) {
	b := &Broadcaster{}
	engine, err := rsm.New(rsm.Config{
		N: n, Algorithm: alg, Provider: provider, MaxRounds: maxRounds,
		BatchSize: tune.BatchSize, Pipeline: tune.Pipeline, Parallel: tune.Parallel,
	}, func(replica int, m Message) {
		// Every process a-delivers the same sequence; the engine applies
		// replicas in order, so recording replica 0's view records the
		// shared total order exactly once per message.
		if replica == 0 {
			b.delivered = append(b.delivered, m)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("abcast: %w", err)
	}
	b.engine = engine
	return b, nil
}

// Broadcast submits a message (it reaches all processes' proposal pools,
// as with client forwarding in any replicated state machine). Each sender
// is a client session; every Broadcast is a fresh message.
func (b *Broadcaster) Broadcast(sender core.ProcessID, payload string) {
	b.engine.SubmitNext(rsm.ClientID(sender), Message{Sender: sender, Payload: payload})
}

// Engine exposes the underlying replication engine (stats, latencies,
// session-level submission).
func (b *Broadcaster) Engine() *rsm.Engine[Message] { return b.engine }

// Pending counts a-broadcast messages not yet a-delivered.
func (b *Broadcaster) Pending() int { return b.engine.Pending() }

// Slots returns the number of consensus slots decided so far.
func (b *Broadcaster) Slots() int { return b.engine.Stats().Slots }

// Delivered returns a copy of the a-delivered sequence.
func (b *Broadcaster) Delivered() []Message {
	out := make([]Message, len(b.delivered))
	copy(out, b.delivered)
	return out
}

// DecideSlot decides the next window of slots (a single slot unless the
// broadcaster is pipelined) and a-delivers its messages in submission
// order. It reports how many messages were delivered (0 is possible: an
// empty batch).
func (b *Broadcaster) DecideSlot() (int, error) {
	return b.engine.DecideWindow()
}

// Drain decides slots until nothing is pending or the slot budget runs
// out, returning the number of messages delivered. Every undecided path
// satisfies errors.Is(err, ErrSlotUndecided).
func (b *Broadcaster) Drain(maxSlots int) (int, error) {
	return b.engine.Drain(maxSlots)
}
