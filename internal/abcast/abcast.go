// Package abcast implements atomic (total-order) broadcast on top of
// repeated consensus in the Heard-Of model — the first application the
// paper's introduction names ("consensus ... appears when implementing
// atomic broadcast").
//
// Messages are a-broadcast by any process and a-delivered by all
// processes in the same total order. Each consensus slot decides a BATCH:
// proposals are bitmasks over a window of undelivered messages, so one
// slot can deliver up to 63 messages — consensus cost is amortized over
// bursts. Liveness per slot is inherited from the underlying
// ⟨algorithm, predicate⟩ pair; safety (total order, integrity) holds
// whenever consensus safety holds.
package abcast

import (
	"errors"
	"fmt"

	"heardof/internal/core"
)

// Message is one a-broadcast payload.
type Message struct {
	Sender  core.ProcessID
	Payload string
}

// windowBits is how many undelivered messages one batch decision can
// cover (bit 63 stays clear so masks remain positive values).
const windowBits = 63

// Broadcaster replicates a totally ordered message log across n
// processes.
type Broadcaster struct {
	n         int
	algorithm core.Algorithm
	provider  func(slot int) core.HOProvider
	maxRounds core.Round

	pending   []Message // a-broadcast, not yet a-delivered (FIFO)
	delivered []Message // the total order, shared by all processes
	slots     int
}

// ErrSlotUndecided is returned when a slot's instance exhausts its round
// budget.
var ErrSlotUndecided = errors.New("abcast: slot undecided within the round budget")

// New creates a broadcaster over n processes deciding batches with alg
// under the per-slot provider.
func New(n int, alg core.Algorithm, provider func(slot int) core.HOProvider, maxRounds core.Round) (*Broadcaster, error) {
	if n < 1 || n > core.MaxProcesses {
		return nil, fmt.Errorf("abcast: n = %d out of range", n)
	}
	if alg == nil || provider == nil {
		return nil, errors.New("abcast: nil algorithm or provider")
	}
	return &Broadcaster{n: n, algorithm: alg, provider: provider, maxRounds: maxRounds}, nil
}

// Broadcast submits a message (it reaches all processes' proposal pools,
// as with client forwarding in any replicated state machine).
func (b *Broadcaster) Broadcast(sender core.ProcessID, payload string) {
	b.pending = append(b.pending, Message{Sender: sender, Payload: payload})
}

// Pending counts a-broadcast messages not yet a-delivered.
func (b *Broadcaster) Pending() int { return len(b.pending) }

// Slots returns the number of consensus slots decided so far.
func (b *Broadcaster) Slots() int { return b.slots }

// Delivered returns a copy of the a-delivered sequence.
func (b *Broadcaster) Delivered() []Message {
	out := make([]Message, len(b.delivered))
	copy(out, b.delivered)
	return out
}

// DecideSlot runs one consensus instance deciding the next batch and
// a-delivers its messages in submission order. It reports how many
// messages the batch delivered (0 is possible: an empty batch).
func (b *Broadcaster) DecideSlot() (int, error) {
	window := len(b.pending)
	if window > windowBits {
		window = windowBits
	}
	var mask core.Value
	if window > 0 {
		mask = core.Value(1)<<uint(window) - 1
	}
	initial := make([]core.Value, b.n)
	for i := range initial {
		initial[i] = mask
	}

	ru, err := core.NewRunner(b.algorithm, initial, b.provider(b.slots))
	if err != nil {
		return 0, err
	}
	tr, err := ru.Run(b.maxRounds)
	if err != nil {
		return 0, fmt.Errorf("slot %d: %w", b.slots, ErrSlotUndecided)
	}
	if err := tr.CheckConsensusSafety(); err != nil {
		return 0, fmt.Errorf("slot %d: %w", b.slots, err)
	}
	b.slots++

	decided := tr.Decisions[0].Value
	count := 0
	keep := b.pending[:0:0]
	for i := 0; i < window; i++ {
		if decided&(1<<uint(i)) != 0 {
			b.delivered = append(b.delivered, b.pending[i])
			count++
		} else {
			keep = append(keep, b.pending[i])
		}
	}
	b.pending = append(keep, b.pending[window:]...)
	return count, nil
}

// Drain decides slots until nothing is pending or the slot budget runs
// out, returning the number of messages delivered.
func (b *Broadcaster) Drain(maxSlots int) (int, error) {
	total := 0
	for s := 0; s < maxSlots && b.Pending() > 0; s++ {
		n, err := b.DecideSlot()
		if err != nil {
			return total, err
		}
		total += n
	}
	if b.Pending() > 0 {
		return total, fmt.Errorf("abcast: %d messages still pending after %d slots", b.Pending(), maxSlots)
	}
	return total, nil
}
