package ctcs

import (
	"testing"

	"heardof/internal/core"
	"heardof/internal/fd"
	"heardof/internal/runtime"
)

type cluster struct {
	sim   *runtime.Sim
	nodes []*Node
}

func newCluster(t *testing.T, n int, initial []core.Value, cfg runtime.Config, gst runtime.Time) *cluster {
	t.Helper()
	cfg.N = n
	nodes := make([]*Node, n)
	var det *fd.EventuallyStrong
	sim, err := runtime.New(cfg, func(p runtime.NodeID) runtime.Handler {
		nodes[p] = NewNode(n, initial[p], nil, 2)
		return nodes[p]
	})
	if err != nil {
		t.Fatal(err)
	}
	det = fd.NewEventuallyStrong(sim, gst, cfg.Seed^0xfd)
	for _, nd := range nodes {
		nd.detector = det
	}
	return &cluster{sim: sim, nodes: nodes}
}

func (c *cluster) decidedCount() int {
	count := 0
	for _, nd := range c.nodes {
		if _, ok := nd.Decided(); ok {
			count++
		}
	}
	return count
}

func (c *cluster) checkAgreementIntegrity(t *testing.T, initial []core.Value) {
	t.Helper()
	var first *core.Value
	for p, nd := range c.nodes {
		v, ok := nd.Decided()
		if !ok {
			continue
		}
		if first == nil {
			vv := v
			first = &vv
		} else if *first != v {
			t.Fatalf("agreement violated: p%d decided %d, another decided %d", p, v, *first)
		}
		found := false
		for _, iv := range initial {
			if iv == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("integrity violated: %d is not an initial value", v)
		}
	}
}

func TestDecidesWithReliableLinksNoCrash(t *testing.T) {
	initial := []core.Value{3, 1, 4, 1, 5}
	c := newCluster(t, 5, initial, runtime.Config{
		MinDelay: 0.5, MaxDelay: 1, Seed: 1,
	}, 0)
	aliveAll := func() bool { return c.decidedCount() == 5 }
	if !c.sim.RunUntil(aliveAll, 500) {
		t.Fatalf("only %d/5 decided", c.decidedCount())
	}
	c.checkAgreementIntegrity(t, initial)
	// With coordinator 0 alive from round 1, the decision is 0's value...
	// after phase 2 the coordinator picks the highest-timestamp estimate
	// (all ts=0, so the first received). We only require agreement.
}

func TestToleratesMinorityCrashes(t *testing.T) {
	initial := []core.Value{7, 7, 7, 7, 7}
	c := newCluster(t, 5, initial, runtime.Config{
		MinDelay: 0.5, MaxDelay: 1, Seed: 2,
		Crashes: []runtime.CrashEvent{
			{P: 0, At: 0.1, RecoverAt: -1}, // round-1 coordinator dies immediately
			{P: 4, At: 5, RecoverAt: -1},
		},
	}, 20)
	survivors := func() bool {
		count := 0
		for p, nd := range c.nodes {
			if !c.sim.Up(core.ProcessID(p)) {
				continue
			}
			if _, ok := nd.Decided(); ok {
				count++
			}
		}
		return count >= 3
	}
	if !c.sim.RunUntil(survivors, 2000) {
		t.Fatal("survivors did not decide despite ◇S after GST")
	}
	c.checkAgreementIntegrity(t, initial)
}

func TestBlocksUnderSustainedMessageLoss(t *testing.T) {
	// Footnote 2 / E9: with StableLossProb > 0, the algorithm's
	// wait-untils can block forever. We count decided runs across seeds
	// at loss 0 vs loss 0.4 within the same horizon: loss must cost
	// liveness in at least some runs, while safety always holds.
	decidedAt := func(loss float64) int {
		decided := 0
		for seed := uint64(0); seed < 10; seed++ {
			initial := []core.Value{1, 2, 3, 4, 5}
			c := newCluster(t, 5, initial, runtime.Config{
				MinDelay: 0.5, MaxDelay: 1, Seed: seed,
				LossProb: loss, GST: 0, StableLossProb: loss,
			}, 0)
			if c.sim.RunUntil(func() bool { return c.decidedCount() == 5 }, 400) {
				decided++
			}
			c.checkAgreementIntegrity(t, initial)
		}
		return decided
	}
	noLoss := decidedAt(0)
	withLoss := decidedAt(0.4)
	if noLoss != 10 {
		t.Errorf("reliable links: %d/10 decided, want 10", noLoss)
	}
	if withLoss >= noLoss {
		t.Errorf("40%% loss: %d/10 decided, expected strictly fewer than %d (the blocking of footnote 2)",
			withLoss, noLoss)
	}
}

func TestCoordRotation(t *testing.T) {
	if Coord(1, 5) != 0 || Coord(2, 5) != 1 || Coord(6, 5) != 0 {
		t.Error("coordinator rotation wrong")
	}
}

func TestRoundProgressesPastSuspectedCoordinator(t *testing.T) {
	initial := []core.Value{9, 9, 9}
	c := newCluster(t, 3, initial, runtime.Config{
		MinDelay: 0.5, MaxDelay: 1, Seed: 5,
		Crashes: []runtime.CrashEvent{{P: 0, At: 0.1, RecoverAt: -1}},
	}, 10)
	c.sim.RunUntilTime(300)
	for p := 1; p < 3; p++ {
		if c.nodes[p].Round() < 2 {
			if _, ok := c.nodes[p].Decided(); !ok {
				t.Errorf("p%d stuck in round %d behind a dead coordinator", p, c.nodes[p].Round())
			}
		}
	}
}
