// Package ctcs implements Algorithm 5 of the paper's Appendix A: the
// Chandra–Toueg rotating-coordinator consensus algorithm for the
// crash-stop model with the ◇S failure detector.
//
// The algorithm is the baseline the paper argues against: it presumes
// reliable links. Its wait-until statements (a coordinator waiting for
// ⌈(n+1)/2⌉ estimates or acks, a participant waiting for the coordinator
// unless the detector suspects it) have no escape for message loss —
// footnote 2 of the paper. Experiment E9 demonstrates this empirically by
// running it over lossy links.
package ctcs

import (
	"heardof/internal/core"
	"heardof/internal/fd"
	"heardof/internal/quorum"
	"heardof/internal/runtime"
)

// Message types. Rounds are numbered from 1; the coordinator of round r is
// process (r−1) mod n (the 0-indexed form of the paper's (r mod n)+1).
type (
	// estimateMsg is phase 1: participant → coordinator.
	estimateMsg struct {
		R        int
		Estimate core.Value
		TS       int
	}
	// newEstimateMsg is phase 2: coordinator → all.
	newEstimateMsg struct {
		R        int
		Estimate core.Value
	}
	// ackMsg is phase 3: participant → coordinator (Ack false is a nack).
	ackMsg struct {
		R   int
		Ack bool
	}
	// decideMsg is the reliable broadcast of the decision.
	decideMsg struct {
		Estimate core.Value
	}
)

// Coord returns the coordinator of round r in a system of n processes.
func Coord(r, n int) core.ProcessID { return core.ProcessID((r - 1) % n) }

// Node is one process running Algorithm 5.
type Node struct {
	n        int
	detector *fd.EventuallyStrong
	poll     runtime.Time

	// Participant state.
	estimate core.Value
	ts       int
	r        int
	decided  bool
	decision core.Value
	relayed  bool
	// waitingCoord is the round whose NEWESTIMATE we are blocked on in
	// phase 3 (0 when not waiting).
	waitingCoord int

	// Coordinator state, per round led by this node.
	phase1    map[int][]estimateMsg
	phase2Out map[int]bool
	acks      map[int]int
	nacks     map[int]int
	acked     map[int]bool
}

var _ runtime.Handler = (*Node)(nil)

// NewNode creates a node with initial value v. poll is the detector
// polling interval used while waiting for a coordinator.
func NewNode(n int, v core.Value, detector *fd.EventuallyStrong, poll runtime.Time) *Node {
	return &Node{
		n:         n,
		detector:  detector,
		poll:      poll,
		estimate:  v,
		phase1:    make(map[int][]estimateMsg),
		phase2Out: make(map[int]bool),
		acks:      make(map[int]int),
		nacks:     make(map[int]int),
		acked:     make(map[int]bool),
	}
}

// NewNodeDeferred creates a node whose detector is attached later with
// SetDetector — the detector needs the runtime simulation, which needs
// the node handlers first.
func NewNodeDeferred(n int, v core.Value, poll runtime.Time) *Node {
	return NewNode(n, v, nil, poll)
}

// SetDetector attaches the ◇S detector. It must be called before the
// simulation starts processing events.
func (nd *Node) SetDetector(d *fd.EventuallyStrong) { nd.detector = d }

// Decided reports the node's decision.
func (nd *Node) Decided() (core.Value, bool) { return nd.decision, nd.decided }

// Round returns the node's current round (for tests).
func (nd *Node) Round() int { return nd.r }

// Start implements runtime.Handler.
func (nd *Node) Start(ctx *runtime.Context) { nd.enterRound(ctx, 1) }

// enterRound runs phase 1 of round r.
func (nd *Node) enterRound(ctx *runtime.Context, r int) {
	if nd.decided {
		return
	}
	nd.r = r
	coord := Coord(r, nd.n)
	// Phase 1: send the current estimate to the coordinator.
	if coord == ctx.ID() {
		nd.OnMessage(ctx, ctx.ID(), estimateMsg{R: r, Estimate: nd.estimate, TS: nd.ts})
	} else {
		ctx.Send(coord, estimateMsg{R: r, Estimate: nd.estimate, TS: nd.ts})
	}
	// Phase 3: wait for the coordinator's NEWESTIMATE or suspicion.
	nd.waitingCoord = r
	ctx.After(nd.poll, r)
}

// OnTimer implements runtime.Handler: the phase 3 detector poll.
func (nd *Node) OnTimer(ctx *runtime.Context, round int) {
	if nd.decided || nd.waitingCoord != round || nd.r != round {
		return
	}
	coord := Coord(round, nd.n)
	if nd.detector.Suspects(ctx.ID(), nd.n).Has(coord) {
		// Suspect the coordinator: nack and move on.
		nd.waitingCoord = 0
		nd.sendToCoord(ctx, coord, ackMsg{R: round, Ack: false})
		nd.enterRound(ctx, round+1)
		return
	}
	ctx.After(nd.poll, round)
}

func (nd *Node) sendToCoord(ctx *runtime.Context, coord core.ProcessID, m any) {
	if coord == ctx.ID() {
		nd.OnMessage(ctx, ctx.ID(), m)
	} else {
		ctx.Send(coord, m)
	}
}

// OnMessage implements runtime.Handler.
func (nd *Node) OnMessage(ctx *runtime.Context, from core.ProcessID, msg any) {
	switch m := msg.(type) {
	case estimateMsg:
		nd.coordPhase2(ctx, m)
	case newEstimateMsg:
		nd.participantPhase3(ctx, m)
	case ackMsg:
		nd.coordPhase4(ctx, m)
	case decideMsg:
		nd.deliverDecide(ctx, m)
	}
}

// coordPhase2 collects phase 1 estimates; at ⌈(n+1)/2⌉ it picks the
// estimate with the largest timestamp and broadcasts it.
func (nd *Node) coordPhase2(ctx *runtime.Context, m estimateMsg) {
	if Coord(m.R, nd.n) != ctx.ID() || nd.phase2Out[m.R] {
		return
	}
	nd.phase1[m.R] = append(nd.phase1[m.R], m)
	if len(nd.phase1[m.R]) < quorum.CeilHalf(nd.n) {
		return
	}
	best := nd.phase1[m.R][0]
	for _, e := range nd.phase1[m.R][1:] {
		if e.TS > best.TS {
			best = e
		}
	}
	nd.phase2Out[m.R] = true
	delete(nd.phase1, m.R)
	out := newEstimateMsg{R: m.R, Estimate: best.Estimate}
	for q := 0; q < nd.n; q++ {
		if core.ProcessID(q) == ctx.ID() {
			nd.OnMessage(ctx, ctx.ID(), out)
		} else {
			ctx.Send(core.ProcessID(q), out)
		}
	}
}

// participantPhase3 adopts the coordinator's estimate and acks.
func (nd *Node) participantPhase3(ctx *runtime.Context, m newEstimateMsg) {
	if nd.decided || m.R != nd.r || nd.waitingCoord != m.R {
		return
	}
	nd.waitingCoord = 0
	nd.estimate = m.Estimate
	nd.ts = m.R
	nd.sendToCoord(ctx, Coord(m.R, nd.n), ackMsg{R: m.R, Ack: true})
	nd.enterRound(ctx, m.R+1)
}

// coordPhase4 counts acks; on ⌈(n+1)/2⌉ positive acks it reliably
// broadcasts the decision.
func (nd *Node) coordPhase4(ctx *runtime.Context, m ackMsg) {
	if Coord(m.R, nd.n) != ctx.ID() || nd.acked[m.R] {
		return
	}
	if m.Ack {
		nd.acks[m.R]++
	} else {
		nd.nacks[m.R]++
	}
	if nd.acks[m.R] >= quorum.CeilHalf(nd.n) {
		nd.acked[m.R] = true
		nd.deliverDecide(ctx, decideMsg{Estimate: nd.estimateForRound(m.R)})
		ctx.Broadcast(decideMsg{Estimate: nd.decision})
	} else if nd.acks[m.R]+nd.nacks[m.R] >= quorum.CeilHalf(nd.n) {
		nd.acked[m.R] = true // round failed; participants moved on already
	}
}

// estimateForRound returns the estimate this coordinator proposed in r.
// Since phase 2 set nd.estimate via its own participantPhase3 (the
// coordinator acks itself), the current estimate is the proposed one
// whenever the ack quorum for r is reached.
func (nd *Node) estimateForRound(int) core.Value { return nd.estimate }

// deliverDecide is the R-broadcast delivery: decide once and relay once.
func (nd *Node) deliverDecide(ctx *runtime.Context, m decideMsg) {
	if !nd.relayed {
		nd.relayed = true
		ctx.Broadcast(m)
	}
	if !nd.decided {
		nd.decided = true
		nd.decision = m.Estimate
		nd.waitingCoord = 0
	}
}

// OnCrash implements runtime.Handler. Algorithm 5 is a crash-stop
// algorithm: a crashed node stays silent forever (the runtime never
// reboots it in E8/E9 scenarios for this baseline).
func (nd *Node) OnCrash() {}

// OnRecover implements runtime.Handler: crash-stop algorithms have no
// recovery procedure; a rebooted node rejoins with volatile state lost,
// which is exactly the behaviour the paper's §2.1 identifies as unsound
// for this algorithm (it may violate agreement). It restarts from round 1
// with its initial state wiped to the last estimate it held — here we
// model the naive restart the paper warns about.
func (nd *Node) OnRecover(ctx *runtime.Context) {
	nd.phase1 = make(map[int][]estimateMsg)
	nd.phase2Out = make(map[int]bool)
	nd.acks = make(map[int]int)
	nd.nacks = make(map[int]int)
	nd.acked = make(map[int]bool)
	nd.waitingCoord = 0
	nd.enterRound(ctx, 1)
}
