package runtime

import (
	"testing"

	"heardof/internal/core"
)

// echo broadcasts "hello" at start and counts deliveries.
type echo struct {
	got      int
	timers   []int
	crashes  int
	recovers int
}

func (e *echo) Start(ctx *Context)              { ctx.Broadcast("hello") }
func (e *echo) OnMessage(*Context, NodeID, any) { e.got++ }
func (e *echo) OnTimer(_ *Context, id int)      { e.timers = append(e.timers, id) }
func (e *echo) OnCrash()                        { e.crashes++ }
func (e *echo) OnRecover(ctx *Context)          { e.recovers++; ctx.Broadcast("again") }

func newEchoSim(t *testing.T, cfg Config) (*Sim, []*echo) {
	t.Helper()
	hs := make([]*echo, cfg.N)
	sim, err := New(cfg, func(p NodeID) Handler {
		hs[p] = &echo{}
		return hs[p]
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim, hs
}

func TestReliableDelivery(t *testing.T) {
	cfg := Config{N: 3, MinDelay: 1, MaxDelay: 2, Seed: 1}
	sim, hs := newEchoSim(t, cfg)
	sim.RunUntilTime(10)
	for p, h := range hs {
		if h.got != 3 {
			t.Errorf("node %d got %d messages, want 3", p, h.got)
		}
	}
	st := sim.Stats()
	if st.Sent != 9 || st.Delivered != 9 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLossBeforeGSTReliableAfter(t *testing.T) {
	cfg := Config{
		N: 2, MinDelay: 1, MaxDelay: 2, LossProb: 1,
		GST: 100, StableLossProb: 0, Seed: 2,
	}
	sim, hs := newEchoSim(t, cfg)
	sim.RunUntilTime(50)
	for p, h := range hs {
		if h.got != 0 {
			t.Errorf("node %d got %d pre-GST messages at loss 1", p, h.got)
		}
	}
	// A post-GST broadcast goes through.
	sim.RunUntilTime(150)
	ctx := &Context{sim: sim, id: 0, now: sim.Now()}
	ctx.Broadcast("post-gst")
	sim.RunUntilTime(200)
	if hs[1].got != 1 {
		t.Errorf("node 1 got %d post-GST messages, want 1", hs[1].got)
	}
}

func TestTimersFireInOrder(t *testing.T) {
	cfg := Config{N: 1, MinDelay: 1, MaxDelay: 1, Seed: 3}
	var sim *Sim
	h := &echo{}
	sim, err := New(cfg, func(NodeID) Handler { return h })
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntilTime(0.5) // boot
	ctx := &Context{sim: sim, id: 0, now: sim.Now()}
	ctx.After(3, 30)
	ctx.After(1, 10)
	ctx.After(2, 20)
	sim.RunUntilTime(10)
	if len(h.timers) != 3 || h.timers[0] != 10 || h.timers[1] != 20 || h.timers[2] != 30 {
		t.Errorf("timers fired as %v, want [10 20 30]", h.timers)
	}
}

func TestCrashCancelsTimersAndIncrementsEpoch(t *testing.T) {
	cfg := Config{
		N: 1, MinDelay: 1, MaxDelay: 1, Seed: 4,
		Crashes: []CrashEvent{{P: 0, At: 5, RecoverAt: 10}},
	}
	h := &echo{}
	sim, err := New(cfg, func(NodeID) Handler { return h })
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntilTime(1)
	ctx := &Context{sim: sim, id: 0, now: sim.Now()}
	ctx.After(7, 99) // would fire at t=8, but node crashes at 5
	sim.RunUntilTime(20)
	for _, id := range h.timers {
		if id == 99 {
			t.Error("timer from before the crash fired after recovery")
		}
	}
	if h.crashes != 1 || h.recovers != 1 {
		t.Errorf("crashes=%d recovers=%d", h.crashes, h.recovers)
	}
	if sim.Epoch(0) != 1 {
		t.Errorf("epoch = %d, want 1", sim.Epoch(0))
	}
}

func TestMessagesToDownNodeDropped(t *testing.T) {
	cfg := Config{
		N: 2, MinDelay: 5, MaxDelay: 5, Seed: 5,
		Crashes: []CrashEvent{{P: 1, At: 1, RecoverAt: -1}},
	}
	sim, hs := newEchoSim(t, cfg)
	sim.RunUntilTime(20)
	if hs[1].got != 0 {
		t.Errorf("down node received %d messages", hs[1].got)
	}
	if !sim.CrashedForever(1) {
		t.Error("CrashedForever(1) = false")
	}
	if sim.CrashedForever(0) {
		t.Error("CrashedForever(0) = true for an up node")
	}
}

func TestValidation(t *testing.T) {
	bad := Config{N: 0}
	if _, err := New(bad, func(NodeID) Handler { return &echo{} }); err == nil {
		t.Error("expected error for N=0")
	}
	bad = Config{N: 1, Crashes: []CrashEvent{{P: 0, At: 10, RecoverAt: 1}}}
	if _, err := New(bad, func(NodeID) Handler { return &echo{} }); err == nil {
		t.Error("expected error for recovery before crash")
	}
	bad = Config{N: 1, Crashes: []CrashEvent{{P: 3, At: 1, RecoverAt: -1}}}
	if _, err := New(bad, func(NodeID) Handler { return &echo{} }); err == nil {
		t.Error("expected error for unknown node")
	}
}

func TestRunUntilCondition(t *testing.T) {
	cfg := Config{N: 2, MinDelay: 1, MaxDelay: 1, Seed: 6}
	sim, hs := newEchoSim(t, cfg)
	if !sim.RunUntil(func() bool { return hs[0].got >= 2 }, 100) {
		t.Fatal("condition never met")
	}
	if sim.Now() > 5 {
		t.Errorf("ran to %v for a condition met at ~1", sim.Now())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		cfg := Config{
			N: 4, MinDelay: 0.5, MaxDelay: 4, LossProb: 0.3, GST: 30,
			Seed:    77,
			Crashes: []CrashEvent{{P: 2, At: 10, RecoverAt: 25}},
		}
		sim, _ := newEchoSim(t, cfg)
		sim.RunUntilTime(60)
		return sim.Stats()
	}
	if run() != run() {
		t.Error("same seed diverged")
	}
}

var _ = core.ProcessID(0) // keep the core import meaningful in docs
