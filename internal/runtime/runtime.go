// Package runtime is a deterministic event-driven asynchronous runtime
// for the failure-detector baselines of the paper (Appendix A): nodes with
// message handlers and timers, a network with per-message delays, loss and
// a global stabilization time (GST), and crash/recovery with volatile
// state loss.
//
// It deliberately models the world the failure-detector literature
// assumes — an asynchronous system that eventually stabilizes — rather
// than the good/bad-period world of §4.1, so that the Chandra–Toueg and
// Aguilera et al. algorithms run on their home turf. Comparing this
// substrate against the communication-predicate stack is the point of
// experiments E8 and E9.
package runtime

import (
	"container/heap"
	"fmt"

	"heardof/internal/core"
	"heardof/internal/xrand"
)

// Time is simulated time (arbitrary units).
type Time = float64

// NodeID identifies a node (same index space as core.ProcessID).
type NodeID = core.ProcessID

// Handler is the algorithm running on one node. All callbacks run in the
// single simulation thread.
type Handler interface {
	// Start runs when the node first boots.
	Start(ctx *Context)
	// OnMessage delivers a message.
	OnMessage(ctx *Context, from NodeID, msg any)
	// OnTimer fires a timer set with ctx.After.
	OnTimer(ctx *Context, id int)
	// OnCrash notifies loss of volatile state.
	OnCrash()
	// OnRecover runs when the node reboots after a crash.
	OnRecover(ctx *Context)
}

// Context is the node's interface to the runtime during a callback.
type Context struct {
	sim *Sim
	id  NodeID
	now Time
}

// ID returns the executing node.
func (c *Context) ID() NodeID { return c.id }

// N returns the system size.
func (c *Context) N() int { return c.sim.cfg.N }

// Now returns the current time (for timers and logging; the baselines may
// use timeouts, unlike the §4.1 processes).
func (c *Context) Now() Time { return c.now }

// Send transmits a message to one node.
func (c *Context) Send(to NodeID, msg any) { c.sim.send(c.id, to, msg, c.now) }

// Broadcast transmits a message to every node, including the sender.
func (c *Context) Broadcast(msg any) {
	for q := 0; q < c.sim.cfg.N; q++ {
		c.sim.send(c.id, NodeID(q), msg, c.now)
	}
}

// After schedules OnTimer(id) after delay d. Timers are volatile: they are
// cancelled by a crash.
func (c *Context) After(d Time, id int) { c.sim.setTimer(c.id, d, id, c.now) }

// Config describes the network and fault environment.
type Config struct {
	N int
	// MinDelay/MaxDelay bound message delays before GST.
	MinDelay, MaxDelay Time
	// LossProb is the pre-GST message loss probability.
	LossProb float64
	// GST is the global stabilization time: from GST on, messages are
	// delivered within [MinDelay, StableDelay] and loss drops to
	// StableLossProb.
	GST Time
	// StableDelay bounds post-GST delays (defaults to MaxDelay).
	StableDelay Time
	// StableLossProb is the post-GST loss probability (normally 0; E9
	// raises it to model the "reliable links" assumption being violated).
	StableLossProb float64
	// Crashes schedules crash/recovery events.
	Crashes []CrashEvent
	Seed    uint64
}

// CrashEvent schedules a crash at At and, if RecoverAt ≥ 0, a recovery.
type CrashEvent struct {
	P         NodeID
	At        Time
	RecoverAt Time
}

// Validate checks the configuration and fills defaults.
func (c *Config) Validate() error {
	if c.N < 1 || c.N > core.MaxProcesses {
		return fmt.Errorf("n = %d out of range [1, %d]", c.N, core.MaxProcesses)
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 0.1
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = c.MinDelay * 10
	}
	if c.StableDelay == 0 {
		c.StableDelay = c.MaxDelay
	}
	if c.StableDelay < c.MinDelay {
		return fmt.Errorf("stable delay %v below min delay %v", c.StableDelay, c.MinDelay)
	}
	return nil
}

const (
	evMsg = iota + 1
	evTimer
	evCrash
	evRecover
	evBoot
)

type event struct {
	t       Time
	seq     uint64
	kind    int
	node    NodeID
	from    NodeID
	msg     any
	timerID int
	epoch   int64 // timers are valid only within the epoch they were set
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type nodeState struct {
	up    bool
	epoch int64 // incremented on every recovery (◇Su's epoch numbers)
}

// Stats counts network activity.
type Stats struct {
	Sent      int64
	Delivered int64
	Dropped   int64
	Timers    int64
	Crashes   int64
	Recovers  int64
}

// Sim is the asynchronous runtime.
type Sim struct {
	cfg      Config
	rng      *xrand.Rand
	queue    eventQueue
	seq      uint64
	now      Time
	nodes    []nodeState
	handlers []Handler
	stats    Stats
}

// New builds a runtime; factory creates each node's handler.
func New(cfg Config, factory func(p NodeID) Handler) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("runtime config: %w", err)
	}
	s := &Sim{
		cfg:      cfg,
		rng:      xrand.New(cfg.Seed ^ 0x51c3),
		nodes:    make([]nodeState, cfg.N),
		handlers: make([]Handler, cfg.N),
	}
	for p := 0; p < cfg.N; p++ {
		s.nodes[p].up = true
		s.handlers[p] = factory(NodeID(p))
		s.push(&event{t: 0, kind: evBoot, node: NodeID(p)})
	}
	for _, ce := range cfg.Crashes {
		if ce.P < 0 || int(ce.P) >= cfg.N {
			return nil, fmt.Errorf("crash event for unknown node %d", ce.P)
		}
		s.push(&event{t: ce.At, kind: evCrash, node: ce.P})
		if ce.RecoverAt >= 0 {
			if ce.RecoverAt < ce.At {
				return nil, fmt.Errorf("node %d recovery %v before crash %v", ce.P, ce.RecoverAt, ce.At)
			}
			s.push(&event{t: ce.RecoverAt, kind: evRecover, node: ce.P})
		}
	}
	return s, nil
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Stats returns a copy of the counters.
func (s *Sim) Stats() Stats { return s.stats }

// Up reports whether node p is up.
func (s *Sim) Up(p NodeID) bool { return s.nodes[p].up }

// Epoch returns p's recovery epoch (0 before any crash).
func (s *Sim) Epoch(p NodeID) int64 { return s.nodes[p].epoch }

// Handler returns node p's handler for inspection.
func (s *Sim) Handler(p NodeID) Handler { return s.handlers[p] }

// CrashedForever reports whether p is down with no scheduled recovery.
func (s *Sim) CrashedForever(p NodeID) bool {
	if s.nodes[p].up {
		return false
	}
	for i := range s.queue {
		e := s.queue[i]
		if e.kind == evRecover && e.node == p {
			return false
		}
	}
	return true
}

func (s *Sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

func (s *Sim) ctx(p NodeID) *Context { return &Context{sim: s, id: p, now: s.now} }

func (s *Sim) send(from, to NodeID, msg any, t Time) {
	s.stats.Sent++
	loss, maxD := s.cfg.LossProb, s.cfg.MaxDelay
	if t >= s.cfg.GST {
		loss, maxD = s.cfg.StableLossProb, s.cfg.StableDelay
	}
	if s.rng.Bool(loss) {
		s.stats.Dropped++
		return
	}
	delay := s.rng.Between(s.cfg.MinDelay, maxD)
	s.push(&event{t: t + delay, kind: evMsg, node: to, from: from, msg: msg})
}

func (s *Sim) setTimer(p NodeID, d Time, id int, t Time) {
	s.stats.Timers++
	s.push(&event{t: t + d, kind: evTimer, node: p, timerID: id, epoch: s.nodes[p].epoch})
}

func (s *Sim) processEvent() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.t
	n := &s.nodes[e.node]
	switch e.kind {
	case evBoot:
		if n.up {
			s.handlers[e.node].Start(s.ctx(e.node))
		}
	case evMsg:
		if !n.up {
			s.stats.Dropped++
			return true
		}
		s.stats.Delivered++
		s.handlers[e.node].OnMessage(s.ctx(e.node), e.from, e.msg)
	case evTimer:
		// Timers are volatile: only fire if the node is up and has not
		// recovered since the timer was set.
		if n.up && n.epoch == e.epoch {
			s.handlers[e.node].OnTimer(s.ctx(e.node), e.timerID)
		}
	case evCrash:
		if n.up {
			n.up = false
			s.stats.Crashes++
			s.handlers[e.node].OnCrash()
		}
	case evRecover:
		if !n.up {
			n.up = true
			n.epoch++
			s.stats.Recovers++
			s.handlers[e.node].OnRecover(s.ctx(e.node))
		}
	}
	return true
}

// RunUntilTime processes events up to time t.
func (s *Sim) RunUntilTime(t Time) {
	for s.queue.Len() > 0 && s.queue[0].t <= t {
		if !s.processEvent() {
			return
		}
	}
	if s.now < t {
		s.now = t
	}
}

// RunUntil processes events until cond holds or the horizon passes,
// reporting whether cond was met.
func (s *Sim) RunUntil(cond func() bool, horizon Time) bool {
	if cond() {
		return true
	}
	for s.queue.Len() > 0 && s.queue[0].t <= horizon {
		if !s.processEvent() {
			return cond()
		}
		if cond() {
			return true
		}
	}
	return cond()
}
