package modelcheck

import (
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/uv"
)

// Encodings assume binary value domains {0, 1}; the checkers verify
// consensus over binary inputs, which is the standard small-scope
// reduction (agreement violations manifest already with two values).

// OTRCoder encodes OneThirdRule states: x ∈ {0,1}, decided flag, and the
// decision value.
//
// Layout: bit0 = x, bit1 = decided, bit2 = decision.
type OTRCoder struct{}

var _ StateCoder = OTRCoder{}

// Name implements StateCoder.
func (OTRCoder) Name() string { return "OneThirdRule" }

// RoundPeriod implements StateCoder: every OTR round is alike.
func (OTRCoder) RoundPeriod() int { return 1 }

// Initial implements StateCoder.
func (OTRCoder) Initial(_ core.ProcessID, _ int, v core.Value) uint16 {
	return uint16(v & 1)
}

// Instantiate implements StateCoder.
func (OTRCoder) Instantiate(p core.ProcessID, n int, enc uint16) core.Instance {
	inst := otr.Algorithm{}.NewInstance(p, n, core.Value(enc&1))
	if enc&2 != 0 {
		// Rebuild a decided instance via its snapshot interface: decided
		// instances restore from a snapshot of a decided twin.
		twin := otr.Algorithm{}.NewInstance(p, n, core.Value(enc&1)).(*otr.Instance)
		twin.ForceStateForTest(core.Value(enc&1), true, core.Value((enc>>2)&1))
		inst.(*otr.Instance).Restore(twin.Snapshot())
	}
	return inst
}

// Encode implements StateCoder.
func (OTRCoder) Encode(inst core.Instance) uint16 {
	oi, ok := inst.(*otr.Instance)
	if !ok {
		return 0
	}
	enc := uint16(oi.X() & 1)
	if v, decided := oi.Decided(); decided {
		enc |= 2
		enc |= uint16(v&1) << 2
	}
	return enc
}

// Decision implements StateCoder.
func (OTRCoder) Decision(enc uint16) (core.Value, bool) {
	if enc&2 == 0 {
		return 0, false
	}
	return core.Value((enc >> 2) & 1), true
}

// UVCoder encodes UniformVoting states: x ∈ {0,1}, vote ∈ {⊥,0,1},
// decided flag and decision.
//
// Layout: bit0 = x, bit1 = hasVote, bit2 = vote, bit3 = decided,
// bit4 = decision.
type UVCoder struct{}

var _ StateCoder = UVCoder{}

// Name implements StateCoder.
func (UVCoder) Name() string { return "UniformVoting" }

// RoundPeriod implements StateCoder: UV alternates proposal and vote
// rounds.
func (UVCoder) RoundPeriod() int { return 2 }

// Initial implements StateCoder.
func (UVCoder) Initial(_ core.ProcessID, _ int, v core.Value) uint16 {
	return uint16(v & 1)
}

// Instantiate implements StateCoder.
func (UVCoder) Instantiate(p core.ProcessID, n int, enc uint16) core.Instance {
	inst := uv.Algorithm{}.NewInstance(p, n, core.Value(enc&1)).(*uv.Instance)
	inst.ForceStateForTest(
		core.Value(enc&1),
		core.Value((enc>>2)&1), enc&2 != 0,
		enc&8 != 0, core.Value((enc>>4)&1),
	)
	return inst
}

// Encode implements StateCoder.
func (UVCoder) Encode(inst core.Instance) uint16 {
	ui, ok := inst.(*uv.Instance)
	if !ok {
		return 0
	}
	x, vote, hasVote, decided, decision := ui.StateForTest()
	enc := uint16(x & 1)
	if hasVote {
		enc |= 2
		enc |= uint16(vote&1) << 2
	}
	if decided {
		enc |= 8
		enc |= uint16(decision&1) << 4
	}
	return enc
}

// Decision implements StateCoder.
func (UVCoder) Decision(enc uint16) (core.Value, bool) {
	if enc&8 == 0 {
		return 0, false
	}
	return core.Value((enc >> 4) & 1), true
}
