// Scripted adversary probes for the replica checker — the seeded-mutant
// regression suite. Exhaustive exploration (replica.go) proves the
// absence of safety violations within its bounds, but the two bugs that
// review actually caught in internal/live are LIVENESS-shaped or live
// deep along one adversarial schedule, where blind breadth-first search
// is the wrong tool: a livelock is not a reachable bad state, and the
// locked-vote split needs a ~30-event schedule that a state budget
// drowns in. Each probe therefore drives the real live.ReplicaCore step
// function through ONE deterministic adversarial schedule — full
// control over which envelopes deliver, drop, or time out — and runs
// the same invariant engine over the outcome. Every probe is its own
// control experiment: the identical schedule runs against the mutated
// core (the seeded bug re-enabled) and the real core, and the checker
// must flag the former and pass the latter. A probe that fails its
// control proves nothing about its mutant.
//
// The three probes mirror the three review findings:
//
//   - CheckFreshRetry: live.MutFreshRetry restores the pre-review retry
//     that restarted an undecided slot with a FRESH instance, discarding
//     LastVoting's locked (x, ts). Schedule: phase 1 decides at the
//     coordinator alone, the decide and sync messages are lost, the two
//     survivors starve past the retry budget, then run freely. Real
//     core: the survivor's ts=1 lock steers phase 2 to the decided
//     value. Mutant: the restart forgets the lock, phase 2 decides a
//     different batch — a split decision the invariants flag.
//   - CheckDrift: live.MutNoJump removes the jump rule (node.go). Two
//     survivors of a crash run in lockstep one round apart. Real core:
//     the laggard jumps level on the first future-round message and the
//     pair decides. Mutant: the leader drops every stale message, no
//     coordinator ever assembles a quorum, and the pair spins forever —
//     the drift livelock, reported as a liveness finding.
//   - CheckStall: no core mutation — the environment escalates beyond
//     the documented fault envelope (crash-STOP of a proposer inside
//     the dissemination window, plus total batch loss). The decided
//     batch's only copy dies with its proposer and the survivors block
//     pulling forever: the availability stall PR 5 documented, surfaced
//     as a finding. The control run (no crash) recovers via pulls.
//
// Two further probes cover the crash-RECOVERY fault (a kill -9 with
// stable storage intact, modeled by ReplicaCore.Recover — the
// production restore path):
//
//   - CheckForgetVote: live.MutForgetVote makes recovery discard the
//     persisted locked vote. Schedule: phase 1 decides at the
//     coordinator alone with p1 holding the (x=A, ts=1) lock, p1
//     crash-recovers, then p1 and p2 run freely. Real core: the
//     restored lock steers the next phase back to A. Mutant: recovery
//     comes back lockless, adopt-newest-offered re-proposes B, and the
//     pair decides B against p0's applied A — the split the paper's
//     stable-storage requirement exists to prevent.
//   - CheckStallRecovery: CheckStall's exact window, but the proposer
//     crash-RECOVERS instead of crash-stopping. Its batch hit its own
//     disk in the same step that proposed the id (quorum-durable
//     dissemination), so the rebooted proposer answers the survivors'
//     pulls and everyone applies: the PR-5 stall window is closed for
//     replicas running with a Persister. Contrast with CheckStall(true),
//     where the same schedule minus the disk strands the batch forever.

package modelcheck

import (
	"encoding/binary"
	"fmt"

	"heardof/internal/core"
	"heardof/internal/lastvoting"
	"heardof/internal/live"
)

// ProbeResult is the outcome of one scripted probe run.
type ProbeResult struct {
	// Violation is a safety violation the invariant engine found.
	Violation *ReplicaViolation
	// Findings are non-safety observations (stall, livelock).
	Findings []ReplicaFinding
	// Applied is each replica's commit index at the end of the script.
	Applied []uint64
}

// Flagged reports whether the probe surfaced anything.
func (r ProbeResult) Flagged() bool { return r.Violation != nil || len(r.Findings) > 0 }

// scen drives cores through a deterministic schedule. The wire is a
// FIFO of expanded (single-destination) envelopes; the script decides
// per message whether it delivers or drops.
type scen struct {
	n     int
	cores []*live.ReplicaCore[byte]
	wire  []live.Outbound
	dead  uint8
}

// newScen builds an n-replica LastVoting group. The probes need the
// coordinated algorithm: locked votes and coordinator quorums are what
// the seeded bugs break.
func newScen(n int, mut live.Mutation, retryAfter core.Round) *scen {
	s := &scen{n: n}
	for p := 0; p < n; p++ {
		c, err := live.NewReplicaCore(live.CoreConfig[byte]{
			Self:       core.ProcessID(p),
			N:          n,
			Algorithm:  lastvoting.Algorithm{},
			Msg:        lastvoting.WireCodec{},
			Batch:      ByteBatchCodec{},
			Mutation:   mut,
			RetryAfter: retryAfter,
			MaxRound:   64,
			MaxSlots:   1,
		})
		if err != nil {
			panic(fmt.Sprintf("modelcheck: probe config: %v", err))
		}
		s.cores = append(s.cores, c)
	}
	return s
}

// stepOn feeds one event to a core and queues its output.
func (s *scen) stepOn(p core.ProcessID, ev live.Event[byte]) {
	if s.dead&(1<<uint(p)) != 0 {
		return
	}
	res := s.cores[p].Step(ev)
	for _, o := range res.Out {
		if o.To == live.AllPeers {
			for q := 0; q < s.n; q++ {
				if pid := core.ProcessID(q); pid != p {
					s.wire = append(s.wire, live.Outbound{To: pid, Env: o.Env})
				}
			}
		} else {
			s.wire = append(s.wire, o)
		}
	}
}

func (s *scen) submit(p core.ProcessID, client, seq uint64, cmd byte) {
	s.stepOn(p, live.Event[byte]{Kind: live.EvSubmit, Client: client, Seq: seq, Cmd: cmd})
}
func (s *scen) timeout(p core.ProcessID) { s.stepOn(p, live.Event[byte]{Kind: live.EvRoundTimeout}) }
func (s *scen) tick(p core.ProcessID)    { s.stepOn(p, live.Event[byte]{Kind: live.EvTick}) }
func (s *scen) crash(p core.ProcessID)   { s.dead |= 1 << uint(p) }

// recover models a kill -9 followed by a restart from stable storage:
// the core is replaced by its production recovery image (volatile round
// position, pending submissions, and peer bookkeeping lost; log, dedup
// state, held batches, and any persisted locked vote kept). Anything a
// preceding crash(p) swallowed stays lost — exactly the messages a down
// process never receives.
func (s *scen) recover(p core.ProcessID) {
	s.dead &^= 1 << uint(p)
	s.cores[p] = s.cores[p].Recover()
}

// deliverWhere removes every CURRENTLY queued message matching pred, in
// order, and delivers each to its destination (messages a delivery
// emits queue up but are not delivered in this pass). Crashed
// destinations swallow their messages.
func (s *scen) deliverWhere(pred func(to core.ProcessID, env live.Envelope) bool) {
	batch := s.wire
	s.wire = nil
	var keep []live.Outbound
	for _, o := range batch {
		if pred(o.To, o.Env) {
			s.stepOn(o.To, live.Event[byte]{Kind: live.EvEnvelope, Env: o.Env})
		} else {
			keep = append(keep, o)
		}
	}
	// Preserve FIFO order: unmatched survivors precede newly emitted.
	s.wire = append(keep, s.wire...)
}

// dropWhere removes matching queued messages without delivering them.
func (s *scen) dropWhere(pred func(to core.ProcessID, env live.Envelope) bool) {
	keep := s.wire[:0]
	for _, o := range s.wire {
		if !pred(o.To, o.Env) {
			keep = append(keep, o)
		}
	}
	s.wire = keep
}

// Common predicates.
func anyMsg(core.ProcessID, live.Envelope) bool { return true }
func kindIs(k live.Kind) func(core.ProcessID, live.Envelope) bool {
	return func(_ core.ProcessID, env live.Envelope) bool { return env.Kind == k }
}
func roundTo(p core.ProcessID) func(core.ProcessID, live.Envelope) bool {
	return func(to core.ProcessID, env live.Envelope) bool {
		return env.Kind == live.KindRound && to == p
	}
}
func roundAt(r core.Round) func(core.ProcessID, live.Envelope) bool {
	return func(_ core.ProcessID, env live.Envelope) bool {
		return env.Kind == live.KindRound && env.Round == r
	}
}
func roundAtTo(r core.Round, p core.ProcessID) func(core.ProcessID, live.Envelope) bool {
	return func(to core.ProcessID, env live.Envelope) bool {
		return env.Kind == live.KindRound && env.Round == r && to == p
	}
}

// finish runs the invariant engine over the script's end state.
func (s *scen) finish() ProbeResult {
	findings := map[string]*ReplicaFinding{}
	isLive := func(p core.ProcessID) bool { return s.dead&(1<<uint(p)) == 0 }
	inFlight := func(bid int64) bool {
		for _, o := range s.wire {
			if o.Env.Kind != live.KindBatch || !isLive(o.To) {
				continue
			}
			if v, n := binary.Varint(o.Env.Payload); n > 0 && v == bid {
				return true
			}
		}
		return false
	}
	crashes := 0
	for p := 0; p < s.n; p++ {
		if !isLive(core.ProcessID(p)) {
			crashes++
		}
	}
	res := ProbeResult{
		Violation: checkReplicaInvariants(s.n, s.cores, isLive, inFlight, crashes, findings),
	}
	res.Findings = sortedFindings(findings)
	for _, c := range s.cores {
		logLen, _ := c.LogFingerprint()
		res.Applied = append(res.Applied, logLen)
	}
	return res
}

// CheckFreshRetry runs the locked-vote-discard schedule. With mutated
// (live.MutFreshRetry) the result must contain an agreement violation;
// without, it must be clean with every replica applying the same batch.
func CheckFreshRetry(mutated bool) ProbeResult {
	var mut live.Mutation
	if mutated {
		mut = live.MutFreshRetry
	}
	// RetryAfter 10: long enough that a full retry phase (rounds 5–8,
	// coordinator p1) can complete before the next restart, short enough
	// that the starvation stage below triggers it.
	s := newScen(3, mut, 10)

	// Workload: p0 proposes batch A = (1<<40)|1, p2 batch B = (3<<40)|1.
	// B > A, so adopt-newest-offered prefers B — the bait the mutant
	// takes after forgetting its lock on A.
	s.submit(0, 1, 1, 'a')
	s.submit(2, 3, 1, 'c')

	// Dissemination: contents of A and B reach p1 (it must be able to
	// adopt B and to apply A); A reaches p2; B never reaches p0.
	s.deliverWhere(kindIs(live.KindBatch))

	// Phase 1 (rounds 1–4, coordinator p0), driven to a decision at p0
	// ALONE. Round 1: the survivors' estimates reach p0 — all ts are 0,
	// so p0 votes its own batch A.
	s.deliverWhere(roundTo(0))
	s.dropWhere(roundAt(1))
	// Round 2: the vote reaches p1 only; p2 stays in the dark.
	s.deliverWhere(roundAtTo(2, 1))
	s.dropWhere(roundAt(2))
	s.timeout(0) // p0 adopts its own vote: x=A ts=1, acks
	s.timeout(1) // p1 adopts the vote: x=A ts=1 — THE LOCK — and acks
	// Round 3: p1's ack reaches p0; a self-ack plus it is a majority.
	s.deliverWhere(roundAtTo(3, 0))
	s.dropWhere(roundAt(3))
	s.timeout(0) // p0 ready, sends ⟨decide A⟩
	// Round 4: both decide messages are LOST; p0 decides alone, applies
	// A, and its eager decision push is lost too.
	s.dropWhere(roundAt(4))
	s.timeout(0)
	s.dropWhere(kindIs(live.KindSync))

	// Starvation: p1 and p2 time out through dead phases (their round
	// messages all lost). The real cores just climb rounds, keeping
	// their state; mutated cores hit RetryAfter and restart with FRESH
	// instances — p1 forgets ts=1 and re-proposes the newest offered
	// batch (B), p2 re-proposes a new batch entirely.
	for i := 0; i < 12; i++ {
		s.timeout(1)
		s.timeout(2)
		s.dropWhere(anyMsg)
	}

	// Free run: p1 and p2 exchange round traffic in lockstep (p0 stays
	// silent — it is done; everything to or from it is dropped). The
	// real pair completes a p1-coordinated phase with p1's ts=1 lock
	// steering the vote back to A: agreement holds. The mutated pair,
	// locks forgotten, decides B — splitting from p0's applied A.
	for i := 0; i < 60; i++ {
		s.deliverWhere(func(to core.ProcessID, env live.Envelope) bool {
			return env.Kind == live.KindRound && to != 0 && env.From != 0
		})
		s.timeout(1)
		s.timeout(2)
		s.dropWhere(func(to core.ProcessID, env live.Envelope) bool {
			return env.Kind != live.KindRound || to == 0 || env.From == 0
		})
	}
	return s.finish()
}

// CheckDrift runs the round-drift schedule against a two-survivor
// group. With mutated (live.MutNoJump) neither survivor ever decides —
// reported as a drift-livelock finding; without, the jump rule realigns
// the pair and both decide and apply.
func CheckDrift(mutated bool) ProbeResult {
	var mut live.Mutation
	if mutated {
		mut = live.MutNoJump
	}
	s := newScen(3, mut, 0)
	s.crash(2)

	s.submit(0, 1, 1, 'a')
	// p1 adopts batch A and starts; everything else in flight is lost.
	s.deliverWhere(kindIs(live.KindBatch))
	s.dropWhere(anyMsg)
	// Establish the drift: p0 times out once on its own, moving one
	// round ahead of p1.
	s.timeout(0)

	// Lockstep: every round message delivers, then each survivor times
	// out once. With the jump rule p1 levels up on p0's future-round
	// message immediately and a p1-coordinated phase decides. Without
	// it, p0 is perpetually one round ahead and drops p1's traffic as
	// stale — no coordinator ever hears a quorum.
	const iters = 40
	for i := 0; i < iters; i++ {
		s.deliverWhere(kindIs(live.KindRound))
		s.timeout(0)
		s.timeout(1)
		s.dropWhere(func(_ core.ProcessID, env live.Envelope) bool {
			return env.Kind != live.KindRound
		})
	}

	res := s.finish()
	if res.Violation == nil && res.Applied[0] == 0 && res.Applied[1] == 0 {
		rounds := s.cores[0].Counters().Rounds + s.cores[1].Counters().Rounds
		res.Findings = append(res.Findings, ReplicaFinding{
			Kind: "drift-livelock",
			Message: fmt.Sprintf(
				"no decision after %d lockstep timeout rounds (%d rounds executed) with a live majority",
				iters, rounds),
			Count: 1,
		})
	}
	return res
}

// CheckStall runs the dissemination-window schedule: batch contents
// never leave the proposer, the batch ID decides everywhere anyway, and
// then the proposer crash-stops. With crash=true the invariant engine
// reports the stall finding (availability lost, agreement intact); with
// crash=false the control run recovers by pulling the batch.
func CheckStall(crash bool) ProbeResult {
	s := newScen(3, 0, 0)
	s.submit(0, 1, 1, 'a')
	// THE WINDOW: batch A's contents never reach anyone.
	s.dropWhere(kindIs(live.KindBatch))

	// Phase 1 runs to a decision at all three replicas — agreement needs
	// only the batch ID, not its contents.
	s.deliverWhere(kindIs(live.KindRound)) // p0's estimates poke p1, p2 awake
	s.deliverWhere(kindIs(live.KindRound)) // estimates reach p0: vote = A
	s.deliverWhere(kindIs(live.KindRound)) // the vote reaches p1, p2
	s.timeout(1)
	s.timeout(2)                           // both adopt and ack
	s.deliverWhere(kindIs(live.KindRound)) // acks reach p0: ready, sends decide
	s.deliverWhere(kindIs(live.KindRound)) // decides reach p1, p2
	s.timeout(1)
	s.timeout(2) // both DECIDE slot 1 = A, block pulling its contents
	s.timeout(0) // p0 decides, applies its own batch
	s.dropWhere(anyMsg)

	if crash {
		// Crash-stop the only holder inside the window. The survivors'
		// re-pulls can never be answered: the stall.
		s.crash(0)
		s.tick(1)
		s.tick(2)
		s.deliverWhere(anyMsg) // pulls die with p0
	} else {
		// Control: the proposer lives; pulls recover the contents.
		s.tick(1)
		s.tick(2)
		s.deliverWhere(kindIs(live.KindBatchPull))
		s.deliverWhere(kindIs(live.KindBatch))
	}
	return s.finish()
}

// CheckForgetVote runs the recovery-forgets-the-lock schedule. With
// mutated (live.MutForgetVote) the result must contain an agreement
// violation; without, the restored vote steers the surviving pair back
// to the decided batch and the run is clean with every replica applying
// slot 1.
func CheckForgetVote(mutated bool) ProbeResult {
	var mut live.Mutation
	if mutated {
		mut = live.MutForgetVote
	}
	s := newScen(3, mut, 0)

	// Workload as in CheckFreshRetry: p0 proposes batch A = (1<<40)|1,
	// p2 batch B = (3<<40)|1. B > A, so a lockless recovery re-proposing
	// by adopt-newest-offered picks B — the bait.
	s.submit(0, 1, 1, 'a')
	s.submit(2, 3, 1, 'c')
	s.deliverWhere(kindIs(live.KindBatch))

	// Phase 1 (rounds 1–4, coordinator p0), driven to a decision at p0
	// ALONE, with p1 adopting the vote: x=A, ts=1 — THE LOCK.
	s.deliverWhere(roundTo(0))
	s.dropWhere(roundAt(1))
	s.deliverWhere(roundAtTo(2, 1))
	s.dropWhere(roundAt(2))
	s.timeout(0)
	s.timeout(1)
	s.deliverWhere(roundAtTo(3, 0))
	s.dropWhere(roundAt(3))
	s.timeout(0)
	s.dropWhere(roundAt(4))
	s.timeout(0) // p0 decides alone and applies A
	s.dropWhere(kindIs(live.KindSync))

	// kill -9 p1, restart from stable storage. The persisted instance
	// state is the only memory of the lock; the mutant drops it.
	s.recover(1)

	// Free run: p1 and p2 exchange round traffic (p0 stays silent — it
	// is done). The recovered p1 restarts slot 1 from round 1 and jumps
	// level on p2's future-round traffic. Real pair: a p1-coordinated
	// phase sees p1's ts=1 estimate and votes A — agreement with p0.
	// Mutated pair: both estimates carry ts=0 and value B; B decides,
	// splitting from p0's applied A.
	for i := 0; i < 60; i++ {
		s.deliverWhere(func(to core.ProcessID, env live.Envelope) bool {
			return env.Kind == live.KindRound && to != 0 && env.From != 0
		})
		s.timeout(1)
		s.timeout(2)
		s.dropWhere(func(to core.ProcessID, env live.Envelope) bool {
			return env.Kind != live.KindRound || to == 0 || env.From == 0
		})
	}
	return s.finish()
}

// CheckStallRecovery reruns CheckStall's dissemination-window schedule
// with a crash-RECOVERING proposer: same window, same total batch loss
// on the wire, but the proposer's disk holds the contents (they were
// persisted in the step that proposed the id), so after the reboot the
// survivors' pulls are answered and every replica applies slot 1 — no
// stall finding, no violation. This is the closure proof the
// live/replica.go fault-envelope note points at.
func CheckStallRecovery() ProbeResult {
	s := newScen(3, 0, 0)
	s.submit(0, 1, 1, 'a')
	// THE WINDOW: batch A's contents never reach anyone over the wire.
	s.dropWhere(kindIs(live.KindBatch))

	// Phase 1 runs to a decision at all three replicas (id only).
	s.deliverWhere(kindIs(live.KindRound))
	s.deliverWhere(kindIs(live.KindRound))
	s.deliverWhere(kindIs(live.KindRound))
	s.timeout(1)
	s.timeout(2)
	s.deliverWhere(kindIs(live.KindRound))
	s.deliverWhere(kindIs(live.KindRound))
	s.timeout(1)
	s.timeout(2)
	s.timeout(0)
	s.dropWhere(anyMsg)

	// kill -9 the only holder inside the window — then reboot it from
	// its write-ahead state. The batch came back with it.
	s.crash(0)
	s.recover(0)

	// The survivors' re-pulls now land on a live proposer that still
	// holds the contents; its replies let both apply.
	s.tick(1)
	s.tick(2)
	s.deliverWhere(kindIs(live.KindBatchPull))
	s.deliverWhere(kindIs(live.KindBatch))
	return s.finish()
}
