//go:build !race

package modelcheck

// raceDetectorEnabled reports whether this build carries the race
// detector. The explorer is single-goroutine, so the detector can find
// nothing in it and only multiplies the state-sweep cost; the big
// bounded explorations skip themselves when it is on (the CI
// model-check job runs them race-free at full scope).
const raceDetectorEnabled = false
