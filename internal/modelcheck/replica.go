// Exhaustive small-scope model checking of the LIVE replica protocol
// (live.ReplicaCore) — the layer ABOVE the consensus algorithms this
// package already verifies. The model is the deployed step function
// itself, not a re-implementation: each replica is a live.ReplicaCore
// fed the same events the production shell feeds it, so dissemination,
// adopt-newest-offered, push/pull sync, apply-side session dedup, and
// batch GC are all checked as written.
//
// The environment is the classic asynchronous message soup: every
// envelope a step emits joins a SET of in-flight messages, and the
// explorer may deliver any soup message to its destination at any time,
// any number of times — the soup never shrinks, so duplication and
// arbitrary reordering come for free, and loss is simply an execution
// that never schedules a delivery (transmission faults in the paper's
// sense need no extra machinery). Round timeouts and anti-entropy ticks
// are likewise free events: the explorer fires them whenever the shell
// conceivably could. Crash-STOP of up to CrashBudget processes freezes
// a replica permanently — strictly harsher than the paper's benign
// crash-recovery model, where a paused process rejoins (a pause is
// already subsumed here by schedules that simply never pick a process).
// Crash-RECOVERY of up to RecoveryBudget processes is a separate,
// atomic transition: the replica is replaced by ReplicaCore.Recover(),
// which pipes PersistState through RestoreReplicaCore — the REAL
// production recovery path, so what the model proves is that rebooting
// from exactly the write-ahead state (stable storage kept, round
// position, pending submissions, and peer bookkeeping lost) preserves
// every safety invariant. The crash and the restart are collapsed into
// one step because the downtime in between is subsumed by schedules
// that deliver nothing to the process — the soup model gives the
// adversary that for free.
//
// Scope bounds that keep the state space finite: MaxSlots stops new
// consensus attempts past a slot budget, MaxRound freezes a slot's
// round progression (both are knobs of ReplicaCore itself, zero in
// production), and the workload is a fixed handful of submissions. The
// exploration is a plain depth-first reachable-state closure with
// fingerprint dedup, checked against the safety invariants on every
// (state, event) transition — the TLC recipe, at Go speed. (Depth
// first, not breadth: with a state budget, going deep finds the long
// adversarial schedules seeded mutants need, and for a full closure
// the order is irrelevant.)

package modelcheck

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"heardof/internal/core"
	"heardof/internal/live"
)

// ByteBatchCodec serializes model batches (one-byte commands).
type ByteBatchCodec struct{}

// AppendEntries implements live.BatchCodec.
func (ByteBatchCodec) AppendEntries(dst []byte, entries []live.Entry[byte]) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, e.Client)
		dst = binary.AppendUvarint(dst, e.Seq)
		dst = append(dst, e.Cmd)
	}
	return dst
}

// DecodeEntries implements live.BatchCodec.
func (ByteBatchCodec) DecodeEntries(src []byte) ([]live.Entry[byte], error) {
	count, n := binary.Uvarint(src)
	if n <= 0 || count > 1<<16 {
		return nil, errors.New("modelcheck: bad batch header")
	}
	src = src[n:]
	entries := make([]live.Entry[byte], 0, count)
	for i := uint64(0); i < count; i++ {
		client, n1 := binary.Uvarint(src)
		if n1 <= 0 {
			return nil, errors.New("modelcheck: bad batch entry")
		}
		seq, n2 := binary.Uvarint(src[n1:])
		if n2 <= 0 || len(src) < n1+n2+1 {
			return nil, errors.New("modelcheck: bad batch entry")
		}
		entries = append(entries, live.Entry[byte]{Client: client, Seq: seq, Cmd: src[n1+n2]})
		src = src[n1+n2+1:]
	}
	return entries, nil
}

// Submission is one workload command, submitted before exploration.
type Submission struct {
	Replica core.ProcessID
	Client  uint64
	Seq     uint64
	Cmd     byte
}

// ReplicaModel configures one exhaustive replica-protocol exploration.
type ReplicaModel struct {
	// N is the group size (≤ 3 stays tractable).
	N int
	// Slots bounds the slots replicas START consensus for.
	Slots uint64
	// MaxRound freezes each slot's round progression: the transition of
	// round MaxRound never fires. OTR can decide at the round-1
	// transition (MaxRound 2 suffices); LastVoting decides at the
	// round-4 transition of a phase (MaxRound ≥ 5 for phase 1).
	MaxRound core.Round
	// CrashBudget is the number of crash-STOP events the adversary may
	// spend (0 = none).
	CrashBudget int
	// RecoveryBudget is the number of crash-RECOVERY events the
	// adversary may spend (0 = none): a live replica is atomically
	// replaced by its ReplicaCore.Recover() image — the production
	// restore-from-write-ahead-state path — losing round position,
	// pending submissions, and peer bookkeeping but keeping the log,
	// dedup state, held batches, and any mid-slot locked vote.
	RecoveryBudget int
	// Algorithm and Msg pick the consensus layer (OTR or LastVoting with
	// their wire codecs).
	Algorithm core.Algorithm
	Msg       live.Codec
	// Mutation seeds a protocol bug (see live.Mutation); 0 checks the
	// real protocol.
	Mutation live.Mutation
	// Workload is submitted before exploration starts.
	Workload []Submission
	// MaxBatch caps entries per batch (0 = ReplicaCore's default). Set 1
	// to force one slot per submission — with a single proposer that
	// keeps every slot's proposals unanimous, which OTR at MaxRound 2
	// needs to decide at all.
	MaxBatch int
	// MaxStates bounds the exploration (default 2,000,000). Hitting the
	// bound is not an error: the result reports Complete=false and the
	// absence of violations holds for every state visited (bounded
	// verification), which is how richer scopes whose reachable space
	// exceeds any CI budget are checked.
	MaxStates int
}

// ReplicaViolation is a reachable safety violation of the replica layer.
type ReplicaViolation struct {
	// Kind classifies the broken invariant: "agreement", "integrity",
	// "double-apply", "commit-regression", "gc-needed-batch".
	Kind    string
	Message string
}

// ReplicaFinding is a non-safety observation — today only the
// dissemination-window stall: a decided batch id whose contents no live
// replica holds and no in-flight message carries, reachable only by
// crash-stopping the proposer inside the window between its id deciding
// and its contents reaching anyone (see the fault-envelope note in
// live/replica.go). Availability, not agreement, is what is lost.
type ReplicaFinding struct {
	Kind    string
	Message string
	// Count is how many distinct reachable states exhibit the finding.
	Count int
}

// ReplicaResult summarizes an exploration.
type ReplicaResult struct {
	States      int
	Transitions int64
	Violation   *ReplicaViolation
	Findings    []ReplicaFinding
	// MaxApplied is the deepest commit index any replica reached in any
	// explored state — a vacuity guard: a clean run with MaxApplied 0
	// never exercised decide/apply/GC and proves nothing about them.
	MaxApplied uint64
	// Complete reports whether the reachable space was exhausted. False
	// means the MaxStates budget cut the run: every visited state was
	// still checked, so a clean incomplete run is a bounded-verification
	// result (depth-first order makes the budget cover deep schedules,
	// not just wide shallow ones), but absence of violations beyond the
	// budget is not established.
	Complete bool
}

// rcState is one global model state: the replica cores (persistently
// shared between states — only a stepped core is cloned), the message
// soup, and the crash bookkeeping. coreFP caches each core's canonical
// encoding (recomputed only for a stepped core) and keys mirrors the
// soup as a sorted slice, so fingerprinting a successor is a hash over
// cached bytes rather than a re-encode — the difference between
// thousands and tens of thousands of states per second. soup and keys
// are shared between states until a step actually adds a message
// (owns tracks copy-on-write).
type rcState struct {
	cores      []*live.ReplicaCore[byte]
	coreFP     [][]byte
	soup       map[string]soupMsg
	keys       []string
	owns       bool
	crashed    uint8
	crashes    int
	recoveries int
}

// soupMsg is one in-flight envelope with its destination. batchID is
// pre-parsed for the GC invariant (0 when not a KindBatch).
type soupMsg struct {
	to      core.ProcessID
	env     live.Envelope
	batchID int64
}

// soupKey canonically encodes a (destination, envelope) pair.
func soupKey(to core.ProcessID, env live.Envelope) string {
	b := make([]byte, 0, 16+len(env.Payload))
	b = binary.AppendUvarint(b, uint64(to))
	b = append(b, byte(env.Kind))
	b = binary.AppendUvarint(b, uint64(env.From))
	b = binary.AppendUvarint(b, env.Slot)
	b = binary.AppendUvarint(b, uint64(env.Round))
	b = append(b, env.Payload...)
	return string(b)
}

// live reports whether process p has not crash-stopped.
func (s *rcState) live(p core.ProcessID) bool { return s.crashed&(1<<uint(p)) == 0 }

// fingerprint hashes the canonical global state (cached core encodings
// + sorted soup keys + crash bookkeeping).
func (s *rcState) fingerprint() uint64 {
	h := fnv.New64a()
	for _, fp := range s.coreFP {
		h.Write(fp)
		h.Write([]byte{0xFF})
	}
	for _, k := range s.keys {
		h.Write([]byte(k))
		h.Write([]byte{0xFE})
	}
	h.Write([]byte{s.crashed, byte(s.crashes), byte(s.recoveries)})
	return h.Sum64()
}

// absorb folds a step's outbound envelopes into the soup, expanding
// broadcasts. Messages to self never exist (the core self-delivers).
func (s *rcState) absorb(n int, self core.ProcessID, out []live.Outbound) {
	for _, o := range out {
		if o.To == live.AllPeers {
			for q := 0; q < n; q++ {
				if p := core.ProcessID(q); p != self {
					s.put(p, o.Env)
				}
			}
		} else {
			s.put(o.To, o.Env)
		}
	}
}

// put inserts one envelope, pre-parsing batch ids for the GC check.
// The soup is copy-on-write: the first genuinely new message in a
// forked state duplicates the map and key slice.
func (s *rcState) put(to core.ProcessID, env live.Envelope) {
	key := soupKey(to, env)
	if _, ok := s.soup[key]; ok {
		return
	}
	if !s.owns {
		cp := make(map[string]soupMsg, len(s.soup)+4)
		//holint:allow nodeterminism map-to-map copy; insertion order cannot affect the result
		for k, v := range s.soup {
			cp[k] = v
		}
		s.soup = cp
		s.keys = append(make([]string, 0, len(s.keys)+4), s.keys...)
		s.owns = true
	}
	var bid int64
	if env.Kind == live.KindBatch {
		if v, n := binary.Varint(env.Payload); n > 0 {
			bid = v
		}
	}
	s.soup[key] = soupMsg{to: to, env: env, batchID: bid}
	i := sort.SearchStrings(s.keys, key)
	s.keys = append(s.keys, "")
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = key
}

// forkForStep clones the state for stepping core p: that core is deep-
// copied, the rest (including the soup, copy-on-write) stay shared.
// The caller must refresh coreFP[p] after stepping the clone.
func (s *rcState) forkForStep(p core.ProcessID) *rcState {
	next := &rcState{
		cores:      append([]*live.ReplicaCore[byte](nil), s.cores...),
		coreFP:     append([][]byte(nil), s.coreFP...),
		soup:       s.soup,
		keys:       s.keys,
		crashed:    s.crashed,
		crashes:    s.crashes,
		recoveries: s.recoveries,
	}
	next.cores[p] = s.cores[p].Clone()
	return next
}

// NewReplicaModel validates the configuration.
func NewReplicaModel(m ReplicaModel) (*ReplicaModel, error) {
	if m.N < 1 || m.N > 3 {
		return nil, fmt.Errorf("modelcheck: replica model supports 1..3 replicas, got %d", m.N)
	}
	if m.Slots < 1 || m.MaxRound < 1 {
		return nil, errors.New("modelcheck: Slots and MaxRound must be ≥ 1")
	}
	if m.Algorithm == nil || m.Msg == nil {
		return nil, errors.New("modelcheck: nil algorithm or codec")
	}
	if m.MaxStates <= 0 {
		m.MaxStates = 2_000_000
	}
	return &m, nil
}

// initialState builds the cores and submits the workload.
func (m *ReplicaModel) initialState() (*rcState, error) {
	st := &rcState{soup: make(map[string]soupMsg), owns: true}
	for p := 0; p < m.N; p++ {
		c, err := live.NewReplicaCore(live.CoreConfig[byte]{
			Self:      core.ProcessID(p),
			N:         m.N,
			Algorithm: m.Algorithm,
			Msg:       m.Msg,
			Batch:     ByteBatchCodec{},
			Mutation:  m.Mutation,
			MaxBatch:  m.MaxBatch,
			MaxRound:  m.MaxRound,
			MaxSlots:  m.Slots,
		})
		if err != nil {
			return nil, err
		}
		st.cores = append(st.cores, c)
	}
	for _, sub := range m.Workload {
		if int(sub.Replica) >= m.N {
			return nil, fmt.Errorf("modelcheck: workload replica %d out of range", sub.Replica)
		}
		c := st.cores[sub.Replica]
		res := c.Step(live.Event[byte]{Kind: live.EvSubmit, Client: sub.Client, Seq: sub.Seq, Cmd: sub.Cmd})
		st.absorb(m.N, sub.Replica, res.Out)
	}
	for _, c := range st.cores {
		st.coreFP = append(st.coreFP, c.AppendFingerprint(nil))
	}
	return st, nil
}

// Explore runs the depth-first closure and checks every transition.
func (m *ReplicaModel) Explore() (ReplicaResult, error) {
	var res ReplicaResult
	start, err := m.initialState()
	if err != nil {
		return res, err
	}

	findings := map[string]*ReplicaFinding{}
	seen := map[uint64]bool{start.fingerprint(): true}
	var frontier []*rcState

	// Coverability pruning. The soup is monotone, so a state whose soup
	// is a superset of an already-enqueued state with the SAME cores and
	// crash bookkeeping simulates it: the extra messages only add
	// enabled deliveries, and every safety invariant here is monotone in
	// the soup (none reads a message's absence — gc-needed-batch does,
	// but in a monotone soup a broadcast batch stays in flight forever,
	// so at crashes=0 it is unreachable regardless, and with crashes it
	// is the stall finding, whose discovery the scripted probes own).
	// Any violation reachable from the subset state is therefore
	// reachable from the superset state via the mirrored schedule.
	// Exploring only soup-maximal states per core configuration
	// collapses the dominant source of state variety — interleavings
	// that differ only in which sends have happened yet.
	msgBit := map[string]uint{}
	soupBits := func(keys []string) []uint64 {
		var bs []uint64
		for _, k := range keys {
			b, ok := msgBit[k]
			if !ok {
				b = uint(len(msgBit))
				msgBit[k] = b
			}
			for uint(len(bs)) <= b/64 {
				bs = append(bs, 0)
			}
			bs[b/64] |= 1 << (b % 64)
		}
		return bs
	}
	subset := func(a, b []uint64) bool {
		if len(a) > len(b) {
			return false
		}
		for i, w := range a {
			if w&^b[i] != 0 {
				return false
			}
		}
		return true
	}
	covered := map[string][][]uint64{}
	coreKey := func(st *rcState) string {
		n := 3
		for _, fp := range st.coreFP {
			n += len(fp) + 1
		}
		b := make([]byte, 0, n)
		for _, fp := range st.coreFP {
			b = append(b, fp...)
			b = append(b, 0xFF)
		}
		b = append(b, st.crashed, byte(st.crashes), byte(st.recoveries))
		return string(b)
	}
	enqueue := func(st *rcState) {
		ck := coreKey(st)
		bs := soupBits(st.keys)
		for _, old := range covered[ck] {
			if subset(bs, old) {
				return
			}
		}
		covered[ck] = append(covered[ck], bs)
		frontier = append(frontier, st)
	}
	enqueue(start)
	if v := m.check(start, findings); v != nil {
		res.Violation = v
		res.States = 1
		return res, nil
	}

	// halt stops the exploration: a violation was found, or the state
	// budget was hit (in which case the run is reported incomplete).
	halt := false
	res.Complete = true

	// visit runs the shared bookkeeping for one successor state.
	visit := func(next *rcState, v *ReplicaViolation) {
		res.Transitions++
		if v == nil {
			v = m.check(next, findings)
		}
		if v != nil {
			res.Violation = v
			res.Complete = false
			halt = true
			return
		}
		for _, c := range next.cores {
			if l, _ := c.LogFingerprint(); l > res.MaxApplied {
				res.MaxApplied = l
			}
		}
		f := next.fingerprint()
		if !seen[f] {
			if len(seen) >= m.MaxStates {
				res.Complete = false
				halt = true
				return
			}
			seen[f] = true
			enqueue(next)
		}
	}

	for len(frontier) > 0 && !halt {
		st := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		// Deliveries: any soup message to any live destination, in
		// canonical order for determinism.
		for _, k := range st.keys {
			msg := st.soup[k]
			if halt || !st.live(msg.to) {
				continue
			}
			next, v := m.step(st, msg.to, live.Event[byte]{Kind: live.EvEnvelope, Env: msg.env})
			visit(next, v)
		}

		for p := 0; p < m.N && !halt; p++ {
			pid := core.ProcessID(p)
			if !st.live(pid) {
				continue
			}
			// Round timeouts whenever a round is running (skipped at the
			// MaxRound bound, where closing is a no-op by construction).
			if _, r, active := st.cores[p].RoundState(); active && r < m.MaxRound {
				next, v := m.step(st, pid, live.Event[byte]{Kind: live.EvRoundTimeout})
				visit(next, v)
			}
			if halt {
				break
			}
			// Anti-entropy ticks whenever idle (re-pull or heartbeat).
			if _, _, active := st.cores[p].RoundState(); !active {
				next, v := m.step(st, pid, live.Event[byte]{Kind: live.EvTick})
				visit(next, v)
			}
			if halt {
				break
			}
			// Crash-stop, within budget.
			if st.crashes < m.CrashBudget {
				next := &rcState{cores: st.cores, coreFP: st.coreFP, soup: st.soup, keys: st.keys,
					crashed: st.crashed | 1<<uint(p), crashes: st.crashes + 1, recoveries: st.recoveries}
				visit(next, nil)
			}
			if halt {
				break
			}
			// Crash-RECOVERY, within budget: the replica reboots from its
			// write-ahead state via the production recovery path. Soup
			// messages sent to it before the crash stay deliverable —
			// exactly the duplicate-delivery-after-restart hazard the
			// invariants must survive.
			if st.recoveries < m.RecoveryBudget {
				next := &rcState{
					cores:      append([]*live.ReplicaCore[byte](nil), st.cores...),
					coreFP:     append([][]byte(nil), st.coreFP...),
					soup:       st.soup,
					keys:       st.keys,
					crashed:    st.crashed,
					crashes:    st.crashes,
					recoveries: st.recoveries + 1,
				}
				next.cores[p] = st.cores[p].Recover()
				next.coreFP[p] = next.cores[p].AppendFingerprint(nil)
				visit(next, nil)
			}
		}
	}

	res.States = len(seen)
	res.Findings = sortedFindings(findings)
	return res, nil
}

// sortedFindings flattens a findings map in deterministic (key) order —
// ranging the map directly would make the report order depend on map
// iteration, the exact bug class the determinism contract bans.
func sortedFindings(findings map[string]*ReplicaFinding) []ReplicaFinding {
	keys := make([]string, 0, len(findings))
	for k := range findings { //holint:allow nodeterminism key collection is sorted on the next line
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ReplicaFinding, 0, len(keys))
	for _, k := range keys {
		out = append(out, *findings[k])
	}
	return out
}

// step forks the state, applies one event to one core, and runs the
// transition-local checks (apply dedup, commit-index monotonicity).
func (m *ReplicaModel) step(st *rcState, p core.ProcessID, ev live.Event[byte]) (*rcState, *ReplicaViolation) {
	pre := st.cores[p]
	preLen, _ := pre.LogFingerprint()
	next := st.forkForStep(p)
	res := next.cores[p].Step(ev)
	next.coreFP[p] = next.cores[p].AppendFingerprint(nil)
	next.absorb(m.N, p, res.Out)

	// Double-apply: a Fresh entry must be fresh against the PRE-step
	// high-water mark, and no (client, seq) may apply fresh twice in one
	// step. Together with hwm monotonicity this makes fresh-exactly-once
	// an invariant over whole executions, not just single steps.
	freshSeen := map[[2]uint64]bool{}
	for _, ae := range res.Applied {
		if !ae.Fresh {
			continue
		}
		key := [2]uint64{ae.Entry.Client, ae.Entry.Seq}
		if pre.SeqApplied(ae.Entry.Client, ae.Entry.Seq) || freshSeen[key] {
			return next, &ReplicaViolation{Kind: "double-apply", Message: fmt.Sprintf(
				"replica %d applied client %d seq %d fresh twice", p, ae.Entry.Client, ae.Entry.Seq)}
		}
		freshSeen[key] = true
	}
	if postLen, _ := next.cores[p].LogFingerprint(); postLen < preLen {
		return next, &ReplicaViolation{Kind: "commit-regression", Message: fmt.Sprintf(
			"replica %d commit index regressed %d → %d", p, preLen, postLen)}
	}
	return next, nil
}

// check evaluates the global safety invariants on one state, recording
// availability findings (which are not violations) on the side.
func (m *ReplicaModel) check(st *rcState, findings map[string]*ReplicaFinding) *ReplicaViolation {
	return checkReplicaInvariants(m.N, st.cores, st.live, func(bid int64) bool {
		//holint:allow nodeterminism existential scan; the boolean result is order-insensitive
		for _, msg := range st.soup {
			if msg.batchID == bid && st.live(msg.to) {
				return true
			}
		}
		return false
	}, st.crashes, findings)
}

// checkReplicaInvariants evaluates the replica-layer safety invariants
// on one global state — shared by the exhaustive explorer and the
// scripted probes. isLive reports non-crashed processes, batchInFlight
// whether some in-flight message still carries a batch's contents to a
// live destination, and crashes how many crash-stops the execution has
// spent (they reclassify unavailable decided contents from a GC safety
// bug to the documented stall finding).
func checkReplicaInvariants(n int, cores []*live.ReplicaCore[byte], isLive func(core.ProcessID) bool,
	batchInFlight func(int64) bool, crashes int, findings map[string]*ReplicaFinding) *ReplicaViolation {
	// Divergence counters: the cores detect conflicting decision
	// observations themselves; any nonzero count is a split decision.
	for p, c := range cores {
		if d := c.Counters().Divergent; d != 0 {
			return &ReplicaViolation{Kind: "agreement", Message: fmt.Sprintf(
				"replica %d observed %d divergent decisions", p, d)}
		}
	}

	// Agreement + integrity across every decision observation (applied
	// logs and decided-but-unapplied maps).
	decisions := map[uint64]int64{}
	var maxSlot uint64
	record := func(p int, slot uint64, bid int64) *ReplicaViolation {
		if prev, ok := decisions[slot]; ok && prev != bid {
			return &ReplicaViolation{Kind: "agreement", Message: fmt.Sprintf(
				"slot %d decided as both %d and %d (replica %d)", slot, prev, bid, p)}
		}
		decisions[slot] = bid
		if slot > maxSlot {
			maxSlot = slot
		}
		if bid != 0 {
			proposer := bid>>40 - 1
			if proposer < 0 || proposer >= int64(n) ||
				bid&(1<<40-1) < 1 || bid&(1<<40-1) > cores[proposer].BatchesCreated() {
				return &ReplicaViolation{Kind: "integrity", Message: fmt.Sprintf(
					"slot %d decided batch id %d that no replica proposed", slot, bid)}
			}
		}
		return nil
	}
	for p, c := range cores {
		logLen, _ := c.LogFingerprint()
		for s := uint64(1); s <= logLen; s++ {
			bid, _ := c.LogAt(s)
			if v := record(p, s, bid); v != nil {
				return v
			}
		}
		// Walk the decided-unapplied slots in sorted order: WHICH
		// conflicting pair a violation reports must not depend on map
		// iteration, or the checker's counterexamples vary run to run.
		decided := c.DecidedUnapplied()
		slots := make([]uint64, 0, len(decided))
		for s := range decided { //holint:allow nodeterminism key collection is sorted on the next line
			slots = append(slots, s)
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		for _, s := range slots {
			if v := record(p, s, decided[s]); v != nil {
				return v
			}
		}
	}

	// GC safety / availability: a decided batch some live replica has
	// yet to apply must be obtainable — held by a live replica or in
	// flight. Unreachable contents without any crash is a GC bug
	// (safety); with a crash spent it is the documented dissemination-
	// window stall (availability finding, not a violation).
	for slot := uint64(1); slot <= maxSlot; slot++ {
		bid, ok := decisions[slot]
		if !ok || bid == 0 {
			continue
		}
		needed := false
		for p, c := range cores {
			if logLen, _ := c.LogFingerprint(); isLive(core.ProcessID(p)) && logLen < slot {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		available := false
		for p, c := range cores {
			if isLive(core.ProcessID(p)) && c.HoldsBatch(bid) {
				available = true
				break
			}
		}
		if !available && batchInFlight(bid) {
			available = true
		}
		if !available {
			if crashes == 0 {
				return &ReplicaViolation{Kind: "gc-needed-batch", Message: fmt.Sprintf(
					"slot %d batch %d needed by a live replica but held nowhere", slot, bid)}
			}
			f := findings["stall-window"]
			if f == nil {
				f = &ReplicaFinding{Kind: "stall-window", Message: fmt.Sprintf(
					"dissemination-window stall: slot %d batch %d decided, contents lost with its crashed proposer", slot, bid)}
				findings["stall-window"] = f
			}
			f.Count++
		}
	}
	return nil
}
