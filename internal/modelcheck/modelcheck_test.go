package modelcheck

import (
	"testing"

	"heardof/internal/core"
)

func TestExhaustiveOTRSafetyN3(t *testing.T) {
	// Exhaustive verification: for n=3, binary inputs, EVERY reachable
	// global state under EVERY heard-of assignment satisfies agreement
	// and integrity. The reachable-set fixpoint covers unbounded rounds.
	c, err := New(OTRCoder{}, []core.Value{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("safety violation found: %s in state %+v", res.Violation.Message, res.Violation.State)
	}
	if res.States < 3 {
		t.Errorf("suspiciously small state space: %d", res.States)
	}
	t.Logf("n=3 OTR: %d reachable states, %d transitions — exhaustively safe",
		res.States, res.Transitions)
}

func TestExhaustiveOTRSafetyN4(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4 exploration is ~65k HO assignments per state")
	}
	c, err := New(OTRCoder{}, []core.Value{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("safety violation found: %s", res.Violation.Message)
	}
	t.Logf("n=4 OTR: %d reachable states, %d transitions — exhaustively safe",
		res.States, res.Transitions)
}

func TestExhaustiveOTRAllInputPatterns(t *testing.T) {
	// Every binary input pattern for n=3 (value symmetry covers the rest).
	patterns := [][]core.Value{
		{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 0, 0}, {0, 1, 1}, {1, 1, 1},
	}
	for _, initial := range patterns {
		c, err := New(OTRCoder{}, initial)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Errorf("inputs %v: %s", initial, res.Violation.Message)
		}
	}
}

func TestExhaustiveUVSafeUnderNonEmptyKernels(t *testing.T) {
	// UniformVoting IS safe when every round's kernel is non-empty — now
	// verified exhaustively for n=3, not just statistically.
	c, err := New(UVCoder{}, []core.Value{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	c.RestrictHO(NonEmptyKernelFilter(3))
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation under non-empty kernels: %s (state %+v)",
			res.Violation.Message, res.Violation.State)
	}
	t.Logf("n=3 UV (non-empty kernels): %d states, %d transitions — exhaustively safe",
		res.States, res.Transitions)
}

func TestExhaustiveUVUnsafeUnderArbitraryHO(t *testing.T) {
	// ... and provably UNSAFE without the predicate: the checker finds a
	// concrete agreement violation under arbitrary heard-of sets,
	// confirming the statistical finding in package uv exhaustively.
	c, err := New(UVCoder{}, []core.Value{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected the checker to find UniformVoting's conditional-safety violation")
	}
	t.Logf("found (expected) violation: %s", res.Violation.Message)
}

func TestCheckerValidation(t *testing.T) {
	if _, err := New(OTRCoder{}, nil); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := New(OTRCoder{}, make([]core.Value, 5)); err == nil {
		t.Error("expected error for n>4")
	}
}

func TestCoderRoundTrips(t *testing.T) {
	// Encode ∘ Instantiate = identity over all valid encodings.
	for enc := uint16(0); enc < 8; enc++ {
		if enc&2 == 0 && enc>>2 != 0 {
			continue // decision bits meaningless when undecided
		}
		inst := OTRCoder{}.Instantiate(0, 3, enc)
		if got := (OTRCoder{}).Encode(inst); got != enc {
			t.Errorf("OTR enc %b round-tripped to %b", enc, got)
		}
	}
	for enc := uint16(0); enc < 32; enc++ {
		if enc&2 == 0 && (enc>>2)&1 != 0 {
			continue
		}
		if enc&8 == 0 && (enc>>4)&1 != 0 {
			continue
		}
		inst := UVCoder{}.Instantiate(0, 3, enc)
		if got := (UVCoder{}).Encode(inst); got != enc {
			t.Errorf("UV enc %b round-tripped to %b", enc, got)
		}
	}
}

func TestDecisionDecoding(t *testing.T) {
	if _, ok := (OTRCoder{}).Decision(0b001); ok {
		t.Error("undecided OTR state reported a decision")
	}
	if v, ok := (OTRCoder{}).Decision(0b111); !ok || v != 1 {
		t.Error("decided OTR state decoded wrongly")
	}
	if _, ok := (UVCoder{}).Decision(0b00111); ok {
		t.Error("undecided UV state reported a decision")
	}
	if v, ok := (UVCoder{}).Decision(0b11000); !ok || v != 1 {
		t.Error("decided UV state decoded wrongly")
	}
}

func TestNonEmptyKernelFilter(t *testing.T) {
	f := NonEmptyKernelFilter(3)
	if !f([]core.PIDSet{core.SetOf(0, 1), core.SetOf(1, 2), core.SetOf(1)}) {
		t.Error("kernel {1} rejected")
	}
	if f([]core.PIDSet{core.SetOf(0), core.SetOf(1), core.SetOf(2)}) {
		t.Error("empty kernel accepted")
	}
}
