package modelcheck

import (
	"testing"

	"heardof/internal/lastvoting"
	"heardof/internal/otr"
)

// TestCheckFreshRetry is the locked-vote-discard mutant kill: the
// seeded fresh-instance retry must produce a split decision the
// invariant engine flags, and the identical schedule against the real
// core must stay clean with every replica applying the same batch.
func TestCheckFreshRetry(t *testing.T) {
	mutated := CheckFreshRetry(true)
	if mutated.Violation == nil {
		t.Fatalf("mutant not flagged: %+v", mutated)
	}
	if mutated.Violation.Kind != "agreement" {
		t.Fatalf("expected agreement violation, got %q: %s",
			mutated.Violation.Kind, mutated.Violation.Message)
	}

	control := CheckFreshRetry(false)
	if control.Flagged() {
		t.Fatalf("control run flagged: violation=%+v findings=%+v",
			control.Violation, control.Findings)
	}
	for p, applied := range control.Applied {
		if applied != 1 {
			t.Fatalf("control: replica %d applied %d slots, want 1 (all: %v)",
				p, applied, control.Applied)
		}
	}
}

// TestCheckDrift is the jump-rule mutant kill: without the jump rule
// two lockstep survivors one round apart never decide (drift-livelock
// finding); with it they realign and both apply.
func TestCheckDrift(t *testing.T) {
	mutated := CheckDrift(true)
	if mutated.Violation != nil {
		t.Fatalf("mutant produced a safety violation, want livelock finding: %+v", mutated.Violation)
	}
	if !hasFinding(mutated.Findings, "drift-livelock") {
		t.Fatalf("mutant not flagged with drift-livelock: %+v", mutated)
	}

	control := CheckDrift(false)
	if control.Flagged() {
		t.Fatalf("control run flagged: violation=%+v findings=%+v",
			control.Violation, control.Findings)
	}
	if control.Applied[0] != 1 || control.Applied[1] != 1 {
		t.Fatalf("control: survivors applied %v, want slot 1 on both", control.Applied)
	}
}

// TestCheckStall is the dissemination-window regression (the PR-5
// documented fault-envelope limitation): crash-stopping the proposer
// between its batch id deciding and its contents reaching anyone
// surfaces as an availability finding — agreement stays intact — while
// the crash-free control recovers via pulls.
func TestCheckStall(t *testing.T) {
	stalled := CheckStall(true)
	if stalled.Violation != nil {
		t.Fatalf("stall must not be a safety violation: %+v", stalled.Violation)
	}
	if !hasFinding(stalled.Findings, "stall-window") {
		t.Fatalf("stall not flagged: %+v", stalled)
	}

	control := CheckStall(false)
	if control.Flagged() {
		t.Fatalf("control run flagged: violation=%+v findings=%+v",
			control.Violation, control.Findings)
	}
	for p, applied := range control.Applied {
		if applied != 1 {
			t.Fatalf("control: replica %d applied %d slots, want 1 (all: %v)",
				p, applied, control.Applied)
		}
	}
}

func hasFinding(fs []ReplicaFinding, kind string) bool {
	for _, f := range fs {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

// TestReplicaExploreOTRClosure exhausts the full reachable space at
// the scope where closure is tractable: n=3, one slot, one crash, the
// complete asynchronous soup. Complete=true here means every reachable
// state was checked — an actual proof within the bounds, not a sample.
func TestReplicaExploreOTRClosure(t *testing.T) {
	m, err := NewReplicaModel(ReplicaModel{
		N:           3,
		Slots:       1,
		MaxRound:    2,
		CrashBudget: 1,
		Algorithm:   otr.Algorithm{},
		Msg:         otr.WireCodec{},
		Workload:    []Submission{{Replica: 0, Client: 1, Seq: 1, Cmd: 'a'}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("safety violation in unmutated protocol: %s: %s",
			res.Violation.Kind, res.Violation.Message)
	}
	if !res.Complete {
		t.Fatalf("expected full closure at this scope, stopped after %d states", res.States)
	}
	if res.MaxApplied == 0 {
		t.Fatal("vacuous exploration: no reachable state ever applied a slot")
	}
	t.Logf("closure: %d states, %d transitions, maxApplied=%d, findings: %+v",
		res.States, res.Transitions, res.MaxApplied, res.Findings)
}

// TestReplicaExploreOTR is the run the issue's acceptance names: n=3,
// two slots, one crash, full asynchronous soup — zero safety
// violations on the unmutated protocol. MaxRound 2 is where OTR
// decides (the round-1 transition, which needs unanimous proposals —
// hence one proposer and MaxBatch 1 so each submission rides its own
// slot). The reachable space at this scope exceeds any CI budget even
// with coverability pruning, so this is bounded verification: a
// 150k-state depth-first sample, every state checked, with the
// MaxApplied assertion proving the sample drives both slots through
// decide and apply. (A 2M-state run of the same model was clean.)
func TestReplicaExploreOTR(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded exploration skipped in -short")
	}
	if raceDetectorEnabled {
		// The explorer is single-goroutine: the race detector cannot find
		// anything here and turns this sweep from ~30s into minutes. The
		// CI model-check job runs the same scope race-free.
		t.Skip("bounded exploration skipped under the race detector")
	}
	m, err := NewReplicaModel(ReplicaModel{
		N:           3,
		Slots:       2,
		MaxRound:    2,
		CrashBudget: 1,
		Algorithm:   otr.Algorithm{},
		Msg:         otr.WireCodec{},
		MaxBatch:    1,
		Workload: []Submission{
			{Replica: 0, Client: 1, Seq: 1, Cmd: 'a'},
			{Replica: 0, Client: 2, Seq: 1, Cmd: 'b'},
		},
		MaxStates: 150_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("safety violation in unmutated protocol: %s: %s",
			res.Violation.Kind, res.Violation.Message)
	}
	if res.MaxApplied < 2 {
		t.Fatalf("exploration never applied both slots (maxApplied=%d)", res.MaxApplied)
	}
	t.Logf("explored %d states (complete=%v), %d transitions, maxApplied=%d, findings: %+v",
		res.States, res.Complete, res.Transitions, res.MaxApplied, res.Findings)
}

// TestReplicaExploreLastVoting covers the coordinated algorithm
// exhaustively at the scope where it stays tractable (n=2; at n=3 the
// four-round phase structure explodes the soup and the scripted probes
// above take over). MaxRound 5 lets phase 1's round-4 transition fire,
// where receivers decide.
func TestReplicaExploreLastVoting(t *testing.T) {
	m, err := NewReplicaModel(ReplicaModel{
		N:           2,
		Slots:       1,
		MaxRound:    5,
		CrashBudget: 1,
		Algorithm:   lastvoting.Algorithm{},
		Msg:         lastvoting.WireCodec{},
		Workload: []Submission{
			{Replica: 0, Client: 1, Seq: 1, Cmd: 'a'},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("safety violation in unmutated protocol: %s: %s",
			res.Violation.Kind, res.Violation.Message)
	}
	if res.MaxApplied == 0 {
		t.Fatal("vacuous exploration: no reachable state ever applied a slot")
	}
	t.Logf("explored %d states, %d transitions, maxApplied=%d, findings: %+v",
		res.States, res.Transitions, res.MaxApplied, res.Findings)
}

// TestCheckForgetVote is the recovery-mutant kill: a restart that
// discards the persisted locked vote must produce a split decision,
// while the real recovery path — identical schedule — restores the
// lock, steers the surviving pair back to the decided batch, and stays
// clean.
func TestCheckForgetVote(t *testing.T) {
	mutated := CheckForgetVote(true)
	if mutated.Violation == nil {
		t.Fatalf("mutant not flagged: %+v", mutated)
	}
	if mutated.Violation.Kind != "agreement" {
		t.Fatalf("expected agreement violation, got %q: %s",
			mutated.Violation.Kind, mutated.Violation.Message)
	}

	control := CheckForgetVote(false)
	if control.Flagged() {
		t.Fatalf("control run flagged: violation=%+v findings=%+v",
			control.Violation, control.Findings)
	}
	for p, applied := range control.Applied {
		if applied != 1 {
			t.Fatalf("control: replica %d applied %d slots, want 1 (all: %v)",
				p, applied, control.Applied)
		}
	}
}

// TestCheckStallRecovery proves the PR-5 dissemination-window stall is
// closed under crash-RECOVERY: the schedule that strands a decided
// batch forever when its proposer crash-STOPS (TestCheckStall) ends
// with every replica applied when the proposer instead reboots from
// its write-ahead state.
func TestCheckStallRecovery(t *testing.T) {
	res := CheckStallRecovery()
	if res.Flagged() {
		t.Fatalf("recovery run flagged: violation=%+v findings=%+v",
			res.Violation, res.Findings)
	}
	for p, applied := range res.Applied {
		if applied != 1 {
			t.Fatalf("replica %d applied %d slots, want 1 (all: %v)", p, applied, res.Applied)
		}
	}
}

// TestReplicaExploreOTRRecoveryClosure exhausts the reachable space
// with one crash-RECOVERY in the adversary's budget (alongside the
// usual message soup): any replica may, at any point, be atomically
// replaced by its production recovery image. Complete=true makes this
// a proof, within the n=3 / one-slot scope, that rebooting from the
// write-ahead state preserves agreement, integrity, apply-once, and
// commit monotonicity no matter where the crash lands.
func TestReplicaExploreOTRRecoveryClosure(t *testing.T) {
	m, err := NewReplicaModel(ReplicaModel{
		N:              3,
		Slots:          1,
		MaxRound:       2,
		RecoveryBudget: 1,
		Algorithm:      otr.Algorithm{},
		Msg:            otr.WireCodec{},
		Workload:       []Submission{{Replica: 0, Client: 1, Seq: 1, Cmd: 'a'}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("safety violation under crash-recovery: %s: %s",
			res.Violation.Kind, res.Violation.Message)
	}
	if !res.Complete {
		t.Fatalf("expected full closure at this scope, stopped after %d states", res.States)
	}
	if res.MaxApplied == 0 {
		t.Fatal("vacuous exploration: no reachable state ever applied a slot")
	}
	t.Logf("recovery closure: %d states, %d transitions, maxApplied=%d, findings: %+v",
		res.States, res.Transitions, res.MaxApplied, res.Findings)
}
