// Package modelcheck exhaustively verifies HO-algorithm safety for small
// systems: it explores the set of global states reachable under EVERY
// possible heard-of assignment, round after round, until a fixpoint, and
// checks the consensus safety invariants on each reachable state.
//
// Because the transition relation of a communication-closed round depends
// only on the current global state and the chosen heard-of sets — not on
// the round number, for round-symmetric algorithms like OneThirdRule —
// the reachable-set fixpoint covers ALL rounds, i.e. the verification is
// exhaustive for unbounded executions, not just bounded prefixes. This is
// the style of result the paper's verification follow-on work (e.g.
// PSync, and the cutoff results for the HO model) mechanizes; here it is
// a plain breadth-first closure, feasible for n ≤ 4 and binary inputs.
package modelcheck

import (
	"fmt"

	"heardof/internal/core"
)

// StateCoder abstracts the algorithm-specific part of the checker: it
// encodes a process's local state into a comparable value and builds an
// instance from an encoded state. Implementations exist for OneThirdRule
// (OTRCoder) and UniformVoting (UVCoder).
type StateCoder interface {
	// Name identifies the algorithm.
	Name() string
	// Initial returns the encoded initial state for value v.
	Initial(p core.ProcessID, n int, v core.Value) uint16
	// Instantiate builds an instance of the algorithm in the given
	// encoded state.
	Instantiate(p core.ProcessID, n int, enc uint16) core.Instance
	// Encode extracts the encoded state from an instance.
	Encode(inst core.Instance) uint16
	// Decision interprets an encoded state's decision, if any.
	Decision(enc uint16) (core.Value, bool)
	// RoundPeriod is the algorithm's round symmetry: OneThirdRule treats
	// every round alike (period 1); UniformVoting alternates between
	// proposal and vote rounds (period 2). The checker runs the closure
	// per round-phase.
	RoundPeriod() int
}

// Global is a global state: one encoded local state per process.
type Global struct {
	Enc [maxN]uint16
	N   int8
	// Phase is the round phase (0 ≤ Phase < RoundPeriod).
	Phase int8
}

const maxN = 4

// Result summarizes an exhaustive exploration.
type Result struct {
	States      int   // distinct reachable global states
	Transitions int64 // explored (state, HO assignment) pairs
	Violation   *Violation
}

// Violation describes a reachable safety violation.
type Violation struct {
	State   Global
	Message string
}

// Checker runs the exploration.
type Checker struct {
	coder   StateCoder
	n       int
	initial []core.Value
	// maxStates aborts pathological explosions.
	maxStates int
	// hoFilter restricts the heard-of assignments the adversary may pick
	// (nil = completely arbitrary). Used to model predicate-constrained
	// environments, e.g. non-empty kernels for UniformVoting.
	hoFilter func(ho []core.PIDSet) bool
}

// New creates a checker for n ≤ 4 processes with the given initial
// values.
func New(coder StateCoder, initial []core.Value) (*Checker, error) {
	n := len(initial)
	if n < 1 || n > maxN {
		return nil, fmt.Errorf("modelcheck supports 1..%d processes, got %d", maxN, n)
	}
	return &Checker{
		coder:     coder,
		n:         n,
		initial:   initial,
		maxStates: 2_000_000,
	}, nil
}

// RestrictHO constrains the adversary to heard-of assignments accepted by
// filter.
func (c *Checker) RestrictHO(filter func(ho []core.PIDSet) bool) { c.hoFilter = filter }

// Run explores the reachable state space to a fixpoint and checks
// agreement and integrity on every reachable state.
func (c *Checker) Run() (Result, error) {
	var res Result

	start := Global{N: int8(c.n)}
	for p := 0; p < c.n; p++ {
		start.Enc[p] = c.coder.Initial(core.ProcessID(p), c.n, c.initial[p])
	}

	seen := map[Global]bool{start: true}
	frontier := []Global{start}
	if v := c.check(start); v != nil {
		res.Violation = v
		res.States = 1
		return res, nil
	}

	// Enumerate all heard-of assignments: each process's HO set is any
	// subset of Π, so there are (2^n)^n assignments per round.
	numSets := 1 << uint(c.n)
	period := c.coder.RoundPeriod()

	for len(frontier) > 0 {
		state := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		// The messages each process would send in this phase.
		msgs := make([]core.Message, c.n)
		insts := make([]core.Instance, c.n)
		for p := 0; p < c.n; p++ {
			insts[p] = c.coder.Instantiate(core.ProcessID(p), c.n, state.Enc[p])
			msgs[p] = insts[p].Send(core.Round(int(state.Phase) + 1))
		}

		ho := make([]core.PIDSet, c.n)
		var enumerate func(p int) error
		enumerate = func(p int) error {
			if p == c.n {
				if c.hoFilter != nil && !c.hoFilter(ho) {
					return nil
				}
				res.Transitions++
				next, err := c.step(state, msgs, ho, period)
				if err != nil {
					return err
				}
				if !seen[next] {
					if len(seen) >= c.maxStates {
						return fmt.Errorf("state budget %d exhausted", c.maxStates)
					}
					seen[next] = true
					frontier = append(frontier, next)
					if v := c.check(next); v != nil && res.Violation == nil {
						res.Violation = v
					}
				}
				return nil
			}
			for mask := 0; mask < numSets; mask++ {
				ho[p] = core.PIDSet(mask)
				if err := enumerate(p + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := enumerate(0); err != nil {
			return res, err
		}
		if res.Violation != nil {
			break
		}
	}

	res.States = len(seen)
	return res, nil
}

// step applies one round transition under the chosen heard-of sets.
func (c *Checker) step(state Global, msgs []core.Message, ho []core.PIDSet, period int) (Global, error) {
	next := Global{N: state.N, Phase: int8((int(state.Phase) + 1) % period)}
	round := core.Round(int(state.Phase) + 1)
	for p := 0; p < c.n; p++ {
		inst := c.coder.Instantiate(core.ProcessID(p), c.n, state.Enc[p])
		inbox := make([]core.IncomingMessage, 0, ho[p].Len())
		ho[p].Intersect(core.FullSet(c.n)).ForEach(func(q core.ProcessID) {
			inbox = append(inbox, core.IncomingMessage{From: q, Payload: msgs[q]})
		})
		inst.Transition(round, inbox)
		next.Enc[p] = c.coder.Encode(inst)
	}
	return next, nil
}

// check evaluates agreement and integrity on a global state.
func (c *Checker) check(g Global) *Violation {
	var firstVal core.Value
	haveFirst := false
	for p := 0; p < c.n; p++ {
		v, ok := c.coder.Decision(g.Enc[p])
		if !ok {
			continue
		}
		// Integrity: the decision is an initial value.
		found := false
		for _, iv := range c.initial {
			if iv == v {
				found = true
				break
			}
		}
		if !found {
			return &Violation{State: g, Message: fmt.Sprintf("integrity: p%d decided %d", p, v)}
		}
		// Agreement.
		if haveFirst && v != firstVal {
			return &Violation{State: g, Message: fmt.Sprintf("agreement: %d vs %d", firstVal, v)}
		}
		firstVal, haveFirst = v, true
	}
	return nil
}

// NonEmptyKernelFilter accepts only heard-of assignments whose kernel
// (∩_p HO(p)) is non-empty — the predicate class UniformVoting is paired
// with.
func NonEmptyKernelFilter(n int) func(ho []core.PIDSet) bool {
	return func(ho []core.PIDSet) bool {
		k := core.FullSet(n)
		for _, s := range ho {
			k = k.Intersect(s)
		}
		return !k.IsEmpty()
	}
}
