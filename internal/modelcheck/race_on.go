//go:build race

package modelcheck

// raceDetectorEnabled: see race_off.go.
const raceDetectorEnabled = true
