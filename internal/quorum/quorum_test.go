package quorum

import "testing"

func TestExceedsTwoThirds(t *testing.T) {
	tests := []struct {
		k, n int
		want bool
	}{
		{3, 4, true},  // 9 > 8
		{2, 3, false}, // 6 > 6 is false: need strictly more
		{3, 3, true},
		{5, 7, true},  // 15 > 14
		{4, 7, false}, // 12 > 14 false
		{0, 1, false},
		{1, 1, true},
	}
	for _, tt := range tests {
		if got := ExceedsTwoThirds(tt.k, tt.n); got != tt.want {
			t.Errorf("ExceedsTwoThirds(%d, %d) = %v", tt.k, tt.n, got)
		}
	}
}

func TestThresholdsAreMinimal(t *testing.T) {
	for n := 1; n <= 64; n++ {
		k := TwoThirdsThreshold(n)
		if !ExceedsTwoThirds(k, n) {
			t.Errorf("n=%d: threshold %d does not exceed 2n/3", n, k)
		}
		if k > 0 && ExceedsTwoThirds(k-1, n) {
			t.Errorf("n=%d: threshold %d is not minimal", n, k)
		}
		m := MajorityThreshold(n)
		if !ExceedsMajority(m, n) || (m > 0 && ExceedsMajority(m-1, n)) {
			t.Errorf("n=%d: majority threshold %d wrong", n, m)
		}
	}
}

func TestCeilHalf(t *testing.T) {
	tests := []struct{ n, want int }{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {7, 4}}
	for _, tt := range tests {
		if got := CeilHalf(tt.n); got != tt.want {
			t.Errorf("CeilHalf(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestThirdFloor(t *testing.T) {
	tests := []struct{ n, want int }{{1, 0}, {3, 1}, {4, 1}, {6, 2}, {7, 2}, {9, 3}}
	for _, tt := range tests {
		if got := ThirdFloor(tt.n); got != tt.want {
			t.Errorf("ThirdFloor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestMaxFaulty(t *testing.T) {
	for n := 2; n <= 64; n++ {
		f := MaxFaultyArbitrary(n)
		if 2*f >= n {
			t.Errorf("n=%d: f=%d violates f < n/2", n, f)
		}
		if 2*(f+1) < n {
			t.Errorf("n=%d: f=%d not maximal", n, f)
		}
		if MaxFaultyTranslation(n) != f {
			t.Errorf("n=%d: translation and arbitrary bounds differ", n)
		}
	}
}
