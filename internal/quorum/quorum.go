// Package quorum centralizes the quorum arithmetic used throughout the
// paper: the strict 2n/3 thresholds of the OneThirdRule algorithm and its
// predicates, simple majorities, and the f+1 INIT quorum of Algorithm 3.
// Keeping the comparisons here avoids scattering subtly different integer
// roundings across packages.
package quorum

// ExceedsTwoThirds reports whether k > 2n/3, evaluated exactly in integer
// arithmetic (3k > 2n).
func ExceedsTwoThirds(k, n int) bool { return 3*k > 2*n }

// TwoThirdsThreshold returns the smallest k with k > 2n/3.
func TwoThirdsThreshold(n int) int { return 2*n/3 + 1 }

// ExceedsMajority reports whether k > n/2 (2k > n).
func ExceedsMajority(k, n int) bool { return 2*k > n }

// MajorityThreshold returns the smallest k with k > n/2.
func MajorityThreshold(n int) int { return n/2 + 1 }

// CeilHalf returns ⌈(n+1)/2⌉, the quorum used by the Chandra–Toueg and
// Aguilera et al. algorithms (wait for ⌈(n+1)/2⌉ processes).
func CeilHalf(n int) int { return (n + 2) / 2 }

// ThirdFloor returns ⌊n/3⌋, the "except at most ⌊n/3⌋" slack of the
// OneThirdRule update rule.
func ThirdFloor(n int) int { return n / 3 }

// MaxFaultyArbitrary returns the largest f with f < n/2, the resilience of
// Algorithm 3 (2f < n).
func MaxFaultyArbitrary(n int) int { return (n - 1) / 2 }

// MaxFaultyTranslation returns the largest f with n > 2f, the requirement
// of the Algorithm 4 translation (same bound as MaxFaultyArbitrary).
func MaxFaultyTranslation(n int) int { return (n - 1) / 2 }
