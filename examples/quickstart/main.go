// Quickstart: solve consensus in the Heard-Of model.
//
// This example stays entirely at the HO layer (§3 of the paper): an
// algorithm is a pair ⟨sending function, transition function⟩, the
// environment is an adversary choosing heard-of sets, and a problem is
// solved by the pair ⟨algorithm, communication predicate⟩. We run
// OneThirdRule (Algorithm 1) against an environment that loses messages
// heavily for a while and then satisfies P_otr, and check the predicate
// and the decisions on the recorded trace.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/predicate"
	"heardof/internal/xrand"
)

func main() {
	const n = 5
	initial := []core.Value{3, 1, 4, 1, 5}

	// The environment: 60% transmission loss (DT faults — any message
	// may be lost) until round 5; from round 5 on, every process hears
	// exactly Π0 = Π, which realizes P_otr.
	env := adversary.ScriptedPotr{
		R0:     5,
		Pi0:    core.FullSet(n),
		Before: &adversary.TransmissionLoss{Rate: 0.6, RNG: xrand.New(2024)},
	}

	runner, err := core.NewRunner(otr.Algorithm{}, initial, env)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := runner.Run(20)
	if err != nil {
		log.Fatalf("consensus did not terminate: %v", err)
	}

	fmt.Printf("OneThirdRule over %d processes, initial values %v\n\n", n, initial)
	for r := core.Round(1); r <= trace.NumRounds(); r++ {
		fmt.Printf("round %-2d heard-of sets:", r)
		for p := 0; p < n; p++ {
			fmt.Printf(" %v", trace.HO(core.ProcessID(p), r))
		}
		fmt.Println()
	}

	fmt.Println("\ndecisions:")
	for p, d := range trace.Decisions {
		fmt.Printf("  p%d → %v\n", p, d)
	}

	// The two layers of Figure 1 meet here: the algorithm solved
	// consensus because the environment delivered its predicate.
	fmt.Printf("\nP_otr holds on the trace: %v\n", (predicate.Potr{}).Holds(trace))
	if r0, pi0, ok := predicate.FindPotrWitness(trace); ok {
		fmt.Printf("witness: round r0=%d with Π0=%v\n", r0, pi0)
	}
	if err := trace.CheckConsensusSafety(); err != nil {
		log.Fatal(err)
	}
	// AgreedValue folds all-decided + agreement into one check and hands
	// back the single decided value.
	v, err := trace.AgreedValue()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreement and integrity verified; agreed value %d\n", v)
}
