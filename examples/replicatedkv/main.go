// Replicated KV store: the application the paper's introduction motivates
// ("consensus is related to replication and appears when implementing
// atomic broadcast...").
//
// Five replicas replicate a key-value store through one consensus
// instance per log slot (OneThirdRule at the HO layer). The network
// between them suffers dynamic transient faults — every message may be
// lost — yet every replica applies the same commands in the same order
// and converges to the same state.
//
// Run with: go run ./examples/replicatedkv
package main

import (
	"fmt"
	"log"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/kvstore"
	"heardof/internal/otr"
	"heardof/internal/xrand"
)

func main() {
	const n = 5
	rng := xrand.New(99)

	// Every slot's consensus instance runs under 25% iid message loss
	// (the DT fault class — the most general benign class of §2.2).
	provider := func(slot int) core.HOProvider {
		return &adversary.TransmissionLoss{Rate: 0.25, RNG: rng.Fork()}
	}

	cluster, err := kvstore.NewCluster(n, otr.Algorithm{}, provider, 500)
	if err != nil {
		log.Fatal(err)
	}

	// Clients contact different replicas.
	workload := []struct {
		contact int
		cmd     kvstore.Command
	}{
		{0, kvstore.Command{Op: kvstore.OpPut, Key: "alice", Value: "100"}},
		{1, kvstore.Command{Op: kvstore.OpPut, Key: "bob", Value: "250"}},
		{2, kvstore.Command{Op: kvstore.OpPut, Key: "carol", Value: "75"}},
		{3, kvstore.Command{Op: kvstore.OpPut, Key: "alice", Value: "120"}},
		{4, kvstore.Command{Op: kvstore.OpDelete, Key: "bob"}},
		{0, kvstore.Command{Op: kvstore.OpPut, Key: "dave", Value: "300"}},
	}
	for _, w := range workload {
		if err := cluster.Submit(w.contact, w.cmd); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client → replica %d: %v\n", w.contact, w.cmd)
	}

	fmt.Println("\nreplicating under 25% message loss...")
	applied, err := cluster.Drain(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d commands replicated over %d consensus slots\n\n", applied, cluster.Slots())

	if !cluster.Converged() {
		log.Fatal("replicas diverged — impossible if consensus safety holds")
	}
	fmt.Println("all replicas converged; replica 0's view:")
	for _, key := range []string{"alice", "bob", "carol", "dave"} {
		if v, ok := cluster.Replica(0).SM.Get(key); ok {
			fmt.Printf("  %s = %s\n", key, v)
		} else {
			fmt.Printf("  %s   (absent)\n", key)
		}
	}
}
