// Replicated KV store: the application the paper's introduction motivates
// ("consensus is related to replication and appears when implementing
// atomic broadcast...").
//
// Five replicas replicate a key-value store through the batched +
// pipelined service layer (internal/rsm): each consensus slot decides a
// BATCH of commands, up to two slots run in flight per window, and every
// submission rides a client session with exactly-once dedup. The network
// suffers dynamic transient faults — every message may be lost — yet all
// replicas apply the same commands in the same order and converge. The
// engine stats show what batching buys: well under one consensus slot
// per command.
//
// Run with: go run ./examples/replicatedkv
package main

import (
	"fmt"
	"log"

	"heardof/internal/adversary"
	"heardof/internal/kvstore"
	"heardof/internal/otr"
	"heardof/internal/rsm"
)

func main() {
	const n = 5

	// Every slot's consensus instance runs under 25% iid message loss
	// (the DT fault class — the most general benign class of §2.2),
	// drawn from the same shared environment factory the E10/E11
	// experiment tables and cmd/hoload use.
	provider := adversary.SlotLoss(0.25, 99)

	cluster, err := kvstore.NewClusterTuned(n, otr.Algorithm{}, provider, 500,
		rsm.Tuning{BatchSize: 4, Pipeline: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Clients contact different replicas; each contact runs its own
	// client session (Submit is always a fresh command; Engine().Submit
	// models retries of an identified one).
	workload := []struct {
		contact int
		cmd     kvstore.Command
	}{
		{0, kvstore.Command{Op: kvstore.OpPut, Key: "alice", Value: "100"}},
		{1, kvstore.Command{Op: kvstore.OpPut, Key: "bob", Value: "250"}},
		{2, kvstore.Command{Op: kvstore.OpPut, Key: "carol", Value: "75"}},
		{3, kvstore.Command{Op: kvstore.OpPut, Key: "alice", Value: "120"}},
		{4, kvstore.Command{Op: kvstore.OpDelete, Key: "bob"}},
		{0, kvstore.Command{Op: kvstore.OpPut, Key: "dave", Value: "300"}},
		{1, kvstore.Command{Op: kvstore.OpGet, Key: "alice"}}, // linearizable read through the log
	}
	for _, w := range workload {
		if err := cluster.Submit(w.contact, w.cmd); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client → replica %d: %v\n", w.contact, w.cmd)
	}

	fmt.Println("\nreplicating under 25% message loss (batch 4, pipeline 2)...")
	applied, err := cluster.Drain(100)
	if err != nil {
		log.Fatal(err)
	}
	st := cluster.Engine().Stats()
	fmt.Printf("%d commands over %d slots (%.2f slots/cmd, %d wall rounds, %d consensus rounds)\n\n",
		applied, st.Slots, float64(st.Slots)/float64(st.Committed), st.WallRounds, st.TotalRounds)

	if !cluster.Converged() {
		log.Fatal("replicas diverged — impossible if consensus safety holds")
	}
	fmt.Println("all replicas converged; replica 0's view:")
	for _, key := range []string{"alice", "bob", "carol", "dave"} {
		if v, ok := cluster.Replica(0).SM.Get(key); ok {
			fmt.Printf("  %s = %s\n", key, v)
		} else {
			fmt.Printf("  %s   (absent)\n", key)
		}
	}
}
