// FD comparison: footnote 2 of the paper made runnable.
//
// The Chandra–Toueg ◇S algorithm presumes reliable links: a process
// either waits for a message or suspects its sender, so a lost message
// that the detector cannot account for blocks the protocol. The HO stack
// treats a lost message as a transmission fault — the round simply moves
// on. This example runs both over increasingly lossy links (giving CT a
// PERFECT failure detector, so only the link assumption is at stake) and
// prints the decision success rates.
//
// Run with: go run ./examples/fdcomparison
package main

import (
	"fmt"

	"heardof/internal/core"
	"heardof/internal/ctcs"
	"heardof/internal/fd"
	"heardof/internal/otr"
	"heardof/internal/predimpl"
	"heardof/internal/runtime"
	"heardof/internal/simtime"
)

const (
	n    = 5
	runs = 10
)

func main() {
	fmt.Printf("%-8s %-22s %-22s\n", "loss", "Chandra–Toueg ◇S", "HO stack (OTR∘Alg2)")
	for _, loss := range []float64{0, 0.1, 0.2, 0.3, 0.4} {
		ct := 0
		ho := 0
		for seed := uint64(0); seed < runs; seed++ {
			if runCT(loss, seed) {
				ct++
			}
			if runHO(loss, seed) {
				ho++
			}
		}
		fmt.Printf("%-8.2f %-22s %-22s\n", loss,
			fmt.Sprintf("%d/%d decided", ct, runs),
			fmt.Sprintf("%d/%d decided", ho, runs))
	}
	fmt.Println("\nCT blocks on lost messages despite its perfect detector (footnote 2);")
	fmt.Println("the HO stack absorbs loss as transmission faults and keeps deciding.")
}

func runCT(loss float64, seed uint64) bool {
	nodes := make([]*ctcs.Node, n)
	sim, err := runtime.New(runtime.Config{
		N: n, MinDelay: 0.5, MaxDelay: 1,
		LossProb: loss, GST: 0, StableLossProb: loss, Seed: seed,
	}, func(p runtime.NodeID) runtime.Handler {
		nodes[p] = ctcs.NewNodeDeferred(n, core.Value(int(p)+1), 2)
		return nodes[p]
	})
	if err != nil {
		return false
	}
	det := fd.NewEventuallyStrong(sim, 0, seed) // perfect from t=0
	for _, nd := range nodes {
		nd.SetDetector(det)
	}
	return sim.RunUntil(func() bool {
		for _, nd := range nodes {
			if _, ok := nd.Decided(); !ok {
				return false
			}
		}
		return true
	}, 400)
}

func runHO(loss float64, seed uint64) bool {
	initial := make([]core.Value, n)
	for i := range initial {
		initial[i] = core.Value(i + 1)
	}
	stack, err := predimpl.BuildStack(predimpl.StackConfig{
		Kind:      predimpl.UseAlg2,
		Algorithm: otr.Algorithm{},
		Initial:   initial,
		Sim: simtime.Config{
			N: n, Phi: 1, Delta: 5,
			Periods: []simtime.Period{{Start: 0, Kind: simtime.Bad}},
			Bad: simtime.BadConfig{
				LossProb: loss,
				MinDelay: 2.5, MaxDelay: 5,
				MinGap: 1, MaxGap: 1,
			},
			Seed: seed,
		},
	})
	if err != nil {
		return false
	}
	return stack.RunUntilAllDecided(core.FullSet(n), 20000) >= 0
}
