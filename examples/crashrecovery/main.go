// Crash-recovery: the same consensus stack, unchanged, rides out crashes
// with recoveries — the uniformity claim of §2.1/§3.3 of the paper.
//
// The stack is OneThirdRule over Algorithm 2 over the §4.1 system-model
// simulator. Three of seven processes crash during an initial bad period
// and recover from stable storage ({r_p, s_p}); once a good period
// arrives, everybody — including the recovered processes — decides.
// Nothing in the algorithm distinguishes crash-stop from crash-recovery:
// the non-reception of messages from a down process is just a transmission
// fault.
//
// Run with: go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"

	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/predimpl"
	"heardof/internal/simtime"
)

func main() {
	const n = 7
	initial := []core.Value{3, 1, 4, 1, 5, 9, 2}

	crashes := []simtime.CrashEvent{
		{P: 0, At: 10, RecoverAt: 60},
		{P: 3, At: 30, RecoverAt: 90},
		{P: 6, At: 55, RecoverAt: 130},
	}
	periods := []simtime.Period{
		{Start: 0, Kind: simtime.Bad}, // lossy, asynchronous, crashes
		{Start: 140, Kind: simtime.GoodDown, Pi0: core.FullSet(n)},
	}

	stack, err := predimpl.BuildStack(predimpl.StackConfig{
		Kind:      predimpl.UseAlg2,
		Algorithm: otr.Algorithm{},
		Initial:   initial,
		Sim: simtime.Config{
			N: n, Phi: 1, Delta: 5,
			Periods: periods, Crashes: crashes, Seed: 7,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("bad period [0, 140): message loss, arbitrary delays, and:")
	for _, c := range crashes {
		fmt.Printf("  p%d crashes at t=%v, recovers at t=%v (volatile state lost, {r_p, s_p} from stable storage)\n",
			c.P, c.At, c.RecoverAt)
	}
	fmt.Println("good period from t=140: π0 = Π synchronous (φ=1, δ=5)")

	last := stack.RunUntilAllDecided(core.FullSet(n), 5000)
	if last < 0 {
		log.Fatal("consensus not reached — should be impossible with this schedule")
	}

	fmt.Println("\ndecisions:")
	for p := 0; p < n; p++ {
		d := stack.Recorder.Decision(core.ProcessID(p))
		fmt.Printf("  p%d decided %d at t=%.2f (round %d)\n", p, d.Value, d.At, d.Round)
	}
	if err := stack.Trace().CheckConsensusSafety(); err != nil {
		log.Fatal(err)
	}
	st := stack.Sim.Stats()
	fmt.Printf("\nall decided by t=%.2f; crashes=%d recoveries=%d purged=%d stable-writes=%d\n",
		last, st.Crashes, st.Recoveries, st.Purged, stack.Stores.TotalWrites())
	fmt.Println("safety verified — same stack, no crash-recovery-specific code")
}
