// Good periods: measure the minimal good-period lengths of §4.2 and
// compare them with the paper's closed-form bounds (Theorems 3, 5, 6, 7).
//
// The system alternates between bad and good periods; the question the
// paper answers — raised by Keidar & Shraer — is how much good-period
// time the environment must provide before the communication predicate
// (and hence consensus) is guaranteed. This example measures it under
// worst-case scheduling and prints measured-vs-bound for one
// configuration of each theorem.
//
// Run with: go run ./examples/goodperiods
package main

import (
	"fmt"
	"log"

	"heardof/internal/predimpl"
)

func main() {
	const (
		n     = 7
		f     = 3
		phi   = 1.0
		delta = 5.0
		x     = 2
	)

	fmt.Printf("n=%d φ=%v δ=%v, predicate window width x=%d (times in Φ− units)\n\n", n, phi, delta, x)

	rows := []struct {
		name string
		e    predimpl.GoodPeriodExperiment
	}{
		{"Theorem 5: Alg2, initial good period (P_su)",
			predimpl.GoodPeriodExperiment{Kind: predimpl.UseAlg2, N: n, Phi: phi, Delta: delta, X: x, TG: 0, Seed: 1}},
		{"Theorem 3: Alg2, non-initial good period (P_su)",
			predimpl.GoodPeriodExperiment{Kind: predimpl.UseAlg2, N: n, Phi: phi, Delta: delta, X: x, TG: 200, Seed: 1}},
		{"Theorem 7: Alg3, initial good period (P_k)",
			predimpl.GoodPeriodExperiment{Kind: predimpl.UseAlg3, N: n, F: f, Phi: phi, Delta: delta, X: x, TG: 0, Seed: 1}},
		{"Theorem 6: Alg3, non-initial good period (P_k)",
			predimpl.GoodPeriodExperiment{Kind: predimpl.UseAlg3, N: n, F: f, Phi: phi, Delta: delta, X: x, TG: 200, Seed: 1}},
	}

	for _, row := range rows {
		res, err := row.e.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", row.name)
		fmt.Printf("  ρ0=%d, window rounds [%d,%d]\n", res.Rho0, res.WindowStart, res.WindowEnd)
		fmt.Printf("  measured %.2f ≤ bound %.2f (ratio %.2f)\n\n", res.Elapsed, res.Bound, res.Ratio)
	}

	// The §4.2.1 headline: non-initial vs initial ≈ 3/2 at x = 2.
	b3 := predimpl.Theorem3GoodPeriodBound(n, phi, delta, x)
	b5 := predimpl.Theorem5InitialBound(n, phi, delta, x)
	fmt.Printf("Theorem 3 / Theorem 5 bound ratio at x=2: %.3f (paper: ≈ 3/2)\n", b3/b5)

	// And the §4.2.2(c) composition for the full stack.
	full := predimpl.FullStackExperiment{N: n, F: 2, Phi: phi, Delta: delta, TG: 200, Seed: 3, OutsidersDown: true}
	res, err := full.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull stack (OTR∘Alg4∘Alg3, n=%d f=2): decided %d after %.2f of good period (bound %.2f, 2f+3 rounds)\n",
		n, res.Decision, res.Elapsed, res.Bound)
}
