// Live replicated KV: the same LastVoting instances the simulator runs,
// now deciding real slots in real time (internal/live + internal/livekv).
//
// Three server processes (goroutine nodes over the in-process channel
// transport) replicate a key-value store sharded across two LastVoting
// groups. Mid-run, 15% transport-layer message loss is switched on —
// the algorithms are never told; shrunken heard-of sets are all they
// see — and the cluster keeps serving linearizable reads and converges
// to identical logs on every node.
//
// This is `hoserve -local 3 -groups 2` without the HTTP skin; run the
// binary for the real thing, or examples/quickstart for the simulated
// HO layer this builds on.
//
// Run with: go run ./examples/livekv
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"heardof/internal/livekv"
)

func main() {
	cluster, err := livekv.NewCluster(livekv.Config{
		Replicas:     3,
		Groups:       2,
		RoundTimeout: 2 * time.Millisecond, // the live stand-in for the good-period bound
	}, 42)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()
	ctx := context.Background()

	fmt.Println("3-node live cluster, 2 LastVoting groups, channel transport")
	if err := cluster.Node(0).Put(ctx, "alice", "100"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("put alice=100 via node 0 (returned after commit)")

	fmt.Println("\ninjecting 15% message loss at every node's transport...")
	for i := 0; i < cluster.N(); i++ {
		cluster.Faults(i).SetLoss(0.15)
	}
	start := time.Now()
	for i := 1; i <= 20; i++ {
		node := cluster.Node(i % cluster.N())
		if err := node.Put(ctx, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("20 writes committed under loss in %v\n", time.Since(start).Round(time.Millisecond))

	// A linearizable read through the log, served by a DIFFERENT node
	// than the writer contacted.
	v, ok, err := cluster.Node(2).Get(ctx, "alice")
	if err != nil || !ok || v != "100" {
		log.Fatalf("read alice = %q/%v (err %v), want 100", v, ok, err)
	}
	fmt.Println("node 2 reads alice=100 — linearizable, through the replicated log")

	for i := 0; i < cluster.N(); i++ {
		cluster.Faults(i).SetLoss(0)
	}
	if err := cluster.ConvergedWithin(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall nodes converged: identical decision logs and state on every replica")
	for _, st := range cluster.Node(0).Status() {
		fmt.Printf("  group %d: %d slots decided, %d commands applied, %d sync catch-ups, %d divergent\n",
			st.Group, st.LogLen, st.Stats.Committed, st.Stats.SyncDecisions, st.Stats.Divergent)
	}
}
