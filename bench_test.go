// Benchmarks regenerating the paper's results: one benchmark per
// experiment table (E1–E9 plus the ablations, see DESIGN.md §4), and
// micro-benchmarks of the layers (HO rounds, the §4.1 simulator, the
// predicate implementation protocols, the baselines).
//
// Run with: go test -bench=. -benchmem
//
// The E-benchmarks report, besides ns/op, the experiment's key metric via
// b.ReportMetric (e.g. the measured/bound ratio), so a bench run doubles
// as a reproduction check.
package heardof_test

import (
	"bytes"
	"context"
	gort "runtime"
	"testing"

	"heardof/internal/abcast"
	"heardof/internal/acr"
	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/ctcs"
	"heardof/internal/experiments"
	"heardof/internal/fd"
	"heardof/internal/kvstore"
	"heardof/internal/lastvoting"
	"heardof/internal/modelcheck"
	"heardof/internal/otr"
	"heardof/internal/predicate"
	"heardof/internal/predimpl"
	"heardof/internal/runtime"
	"heardof/internal/simtime"
	"heardof/internal/stable"
	"heardof/internal/translation"
	"heardof/internal/uv"
	"heardof/internal/xrand"
)

// ---------------------------------------------------------------------------
// E1–E9: one benchmark per experiment table.
// ---------------------------------------------------------------------------

// BenchmarkE1_Alg2GoodPeriod measures one Theorem 3 data point per
// iteration and reports the measured/bound ratio.
func BenchmarkE1_Alg2GoodPeriod(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := (predimpl.GoodPeriodExperiment{
			Kind: predimpl.UseAlg2, N: 7, Phi: 1, Delta: 5, X: 2, TG: 150,
			Seed: uint64(i),
		}).Run()
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "measured/bound")
}

// BenchmarkE2_P2otrVsP11otr compares the two Corollary 4 strategies.
func BenchmarkE2_P2otrVsP11otr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := (predimpl.GoodPeriodExperiment{
			Kind: predimpl.UseAlg2, N: 7, Phi: 1, Delta: 5, X: 2, TG: 150, Seed: uint64(i),
		}).Run(); err != nil {
			b.Fatal(err)
		}
		if _, err := (predimpl.GoodPeriodExperiment{
			Kind: predimpl.UseAlg2, N: 7, Phi: 1, Delta: 5, X: 1, TG: 150, Seed: uint64(i) + 1,
		}).Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(predimpl.Corollary4P2otrBound(7, 1, 5)/predimpl.Corollary4P11otrBound(7, 1, 5),
		"P2otr/P11otr-bound")
}

// BenchmarkE3_InitialGoodPeriod measures a Theorem 5 data point and
// reports the 3/2 factor between Theorems 3 and 5.
func BenchmarkE3_InitialGoodPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := (predimpl.GoodPeriodExperiment{
			Kind: predimpl.UseAlg2, N: 7, Phi: 1, Delta: 5, X: 2, TG: 0, Seed: uint64(i),
		}).Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(predimpl.Theorem3GoodPeriodBound(7, 1, 5, 2)/predimpl.Theorem5InitialBound(7, 1, 5, 2),
		"noninitial/initial")
}

// BenchmarkE4_Alg3GoodPeriod measures a Theorem 6 data point.
func BenchmarkE4_Alg3GoodPeriod(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := (predimpl.GoodPeriodExperiment{
			Kind: predimpl.UseAlg3, N: 7, F: 3, Phi: 1, Delta: 5, X: 2, TG: 150,
			Seed: uint64(i),
		}).Run()
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "measured/bound")
}

// BenchmarkE5_Alg3Initial measures a Theorem 7 data point.
func BenchmarkE5_Alg3Initial(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := (predimpl.GoodPeriodExperiment{
			Kind: predimpl.UseAlg3, N: 7, F: 3, Phi: 1, Delta: 5, X: 2, TG: 0,
			Seed: uint64(i),
		}).Run()
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "measured/bound")
}

// BenchmarkE6_FullStack runs the §4.2.2(c) composition end to end.
func BenchmarkE6_FullStack(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := (predimpl.FullStackExperiment{
			N: 7, F: 2, Phi: 1, Delta: 5, TG: 150,
			Seed: uint64(i), OutsidersDown: true,
		}).Run()
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "measured/bound")
}

// BenchmarkE7_OTRRandomAdversary fuzzes OneThirdRule safety (one 25-round
// adversarial run per iteration).
func BenchmarkE7_OTRRandomAdversary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prov := &adversary.Arbitrary{RNG: xrand.New(uint64(i)), EmptyBias: 0.2}
		ru, err := core.NewRunner(otr.Algorithm{}, []core.Value{3, 1, 4, 1, 5, 9, 2}, prov)
		if err != nil {
			b.Fatal(err)
		}
		ru.RunRounds(25)
		if serr := ru.Trace().CheckConsensusSafety(); serr != nil {
			b.Fatal(serr)
		}
	}
}

// BenchmarkE8_CrashRecoveryUniformity runs the crash-recovery HO scenario
// of the E8 table.
func BenchmarkE8_CrashRecoveryUniformity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stack, err := predimpl.BuildStack(predimpl.StackConfig{
			Kind:      predimpl.UseAlg2,
			Algorithm: otr.Algorithm{},
			Initial:   []core.Value{3, 1, 4, 1, 5, 9, 2},
			Sim: simtime.Config{
				N: 7, Phi: 1, Delta: 5,
				Periods: []simtime.Period{
					{Start: 0, Kind: simtime.Bad},
					{Start: 140, Kind: simtime.GoodDown, Pi0: core.FullSet(7)},
				},
				Crashes: []simtime.CrashEvent{
					{P: 0, At: 10, RecoverAt: 60},
					{P: 3, At: 30, RecoverAt: 90},
					{P: 6, At: 55, RecoverAt: 130},
				},
				Seed: uint64(i),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if stack.RunUntilAllDecided(core.FullSet(7), 5000) < 0 {
			b.Fatal("consensus not reached")
		}
	}
}

// BenchmarkE9_MessageLoss runs one HO-stack decision under 30% permanent
// loss per iteration (the CT side collapses and is measured in the E9
// table instead, where failures are data rather than bench errors).
func BenchmarkE9_MessageLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stack, err := predimpl.BuildStack(predimpl.StackConfig{
			Kind:      predimpl.UseAlg2,
			Algorithm: otr.Algorithm{},
			Initial:   []core.Value{1, 2, 3, 4, 5},
			Sim: simtime.Config{
				N: 5, Phi: 1, Delta: 5,
				Periods: []simtime.Period{{Start: 0, Kind: simtime.Bad}},
				Bad: simtime.BadConfig{
					LossProb: 0.3, MinDelay: 2.5, MaxDelay: 5, MinGap: 1, MaxGap: 1,
				},
				Seed: uint64(i),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if stack.RunUntilAllDecided(core.FullSet(5), 50000) < 0 {
			b.Fatal("HO stack failed to decide under loss")
		}
	}
}

// ---------------------------------------------------------------------------
// The sweep engine: sequential/parallel equivalence and speedup.
// ---------------------------------------------------------------------------

// renderSuite regenerates the full experiment suite with the given worker
// count and returns its rendered text output.
func renderSuite(t *testing.T, workers int) []byte {
	t.Helper()
	tables := experiments.New(experiments.Config{Seed: 1, Parallel: workers}).
		All(context.Background())
	var buf bytes.Buffer
	if err := experiments.RenderAll(&buf, tables); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepSequentialParallelEquivalence is the tentpole guarantee of the
// orchestration engine: the full experiment suite renders byte-identically
// whether the sweep runs on one worker or eight.
func TestSweepSequentialParallelEquivalence(t *testing.T) {
	sequential := renderSuite(t, 1)
	parallel := renderSuite(t, 8)
	if !bytes.Equal(sequential, parallel) {
		t.Errorf("parallel suite output differs from sequential reference:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
			sequential, parallel)
	}
}

// benchSuiteWorkers regenerates the E1 table (36 independent simulation
// cells) per iteration at a fixed worker count; comparing the Sequential
// and Parallel variants measures the engine's speedup.
func benchSuiteWorkers(b *testing.B, workers int) {
	b.Helper()
	runner := experiments.New(experiments.Config{Seed: 1, Parallel: workers})
	for i := 0; i < b.N; i++ {
		if tbl := runner.E1Theorem3(context.Background()); len(tbl.Rows) == 0 {
			b.Fatalf("E1 produced no rows: %v", tbl.Notes)
		}
	}
}

// BenchmarkSweep_E1Sequential is the single-worker reference.
func BenchmarkSweep_E1Sequential(b *testing.B) { benchSuiteWorkers(b, 1) }

// BenchmarkSweep_E1Parallel fans the same cells across all cores.
func BenchmarkSweep_E1Parallel(b *testing.B) { benchSuiteWorkers(b, gort.GOMAXPROCS(0)) }

// BenchmarkTables_Eall regenerates the complete experiment suite once per
// iteration (what cmd/hobench does).
func BenchmarkTables_Eall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.All(uint64(i) + 1)
		if len(tables) != 10 {
			b.Fatal("unexpected table count")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §5).
// ---------------------------------------------------------------------------

func benchAblation(b *testing.B, ab *predimpl.Ablation, bad *simtime.BadConfig) {
	b.Helper()
	var ratio float64
	for i := 0; i < b.N; i++ {
		base := predimpl.GoodPeriodExperiment{
			Kind: predimpl.UseAlg3, N: 5, F: 2, Phi: 1, Delta: 5, X: 2, TG: 400,
			Seed: uint64(i), Bad: bad,
		}
		pure, err := base.Run()
		if err != nil {
			b.Fatal(err)
		}
		ablated := base
		ablated.Ablation = ab
		ablated.Horizon = base.TG + 30*pure.Bound
		res, err := ablated.Run()
		if err != nil {
			ratio = -1 // never established: reported as -1
			continue
		}
		ratio = res.Elapsed / pure.Elapsed
	}
	b.ReportMetric(ratio, "ablated/pure")
}

// BenchmarkAblation_ReceptionPolicy compares round-robin-highest against
// FIFO for Algorithm 3.
func BenchmarkAblation_ReceptionPolicy(b *testing.B) {
	benchAblation(b, &predimpl.Ablation{
		Alg3Policy: func(int) simtime.ReceptionPolicy { return simtime.FIFO{} },
	}, nil)
}

// BenchmarkAblation_RoundCatchup disables the higher-round jump.
func BenchmarkAblation_RoundCatchup(b *testing.B) {
	benchAblation(b, &predimpl.Ablation{DisableCatchup: true}, nil)
}

// BenchmarkAblation_InitQuorum lowers the INIT quorum to 1 under a racing
// outsider.
func BenchmarkAblation_InitQuorum(b *testing.B) {
	var ratio float64
	fast := &simtime.BadConfig{LossProb: 0, MinDelay: 1, MaxDelay: 5, MinGap: 0.05, MaxGap: 0.15}
	for i := 0; i < b.N; i++ {
		base := predimpl.GoodPeriodExperiment{
			Kind: predimpl.UseAlg3, N: 5, F: 1, Phi: 1, Delta: 5, X: 3, TG: 0,
			Seed: uint64(i), Bad: fast,
		}
		pure, err := base.Run()
		if err != nil {
			b.Fatal(err)
		}
		ablated := base
		ablated.Ablation = &predimpl.Ablation{InitQuorum: 1}
		ablated.Horizon = 20 * pure.Bound
		if res, err := ablated.Run(); err != nil {
			ratio = -1
		} else {
			ratio = res.Elapsed / pure.Elapsed
		}
	}
	b.ReportMetric(ratio, "ablated/pure")
}

// ---------------------------------------------------------------------------
// BenchmarkSim_* / BenchmarkRunner_*: the event-core hot path.
//
// These are the benchmarks scripts/bench.sh aggregates into BENCH_sim.json
// — the repo's perf trajectory. Each BenchmarkSim_* iteration runs one
// complete bounded scenario (fresh simulator, fixed horizon), so ns/op and
// allocs/op measure the whole event loop: heap pushes and pops, broadcast
// fan-out, make-ready transfers, reception-policy selection and buffer
// removal. DESIGN.md's Performance section records the before/after
// numbers.
// ---------------------------------------------------------------------------

// benchRoundMsg is a round-carrying payload for simulator-level benches.
type benchRoundMsg struct{ r core.Round }

func (m benchRoundMsg) RoundNumber() core.Round { return m.r }

// benchProto alternates between broadcasting a round-tagged payload and
// draining one buffered message, keeping buffers small and both step kinds
// hot.
type benchProto struct {
	policy simtime.ReceptionPolicy
	round  core.Round
	got    int
}

func (p *benchProto) Step(ctx *simtime.StepContext) {
	if _, ok := ctx.Receive(p.policy); ok {
		p.got++
		return
	}
	p.round++
	ctx.Broadcast(benchRoundMsg{r: p.round})
}

func (p *benchProto) OnCrash()   {}
func (p *benchProto) OnRecover() {}

// benchFloodProto: process 0 broadcasts every step; every other process
// receives every step, so buffers deepen and policy selection dominates.
type benchFloodProto struct {
	p      core.ProcessID
	policy simtime.ReceptionPolicy
	round  core.Round
}

func (p *benchFloodProto) Step(ctx *simtime.StepContext) {
	if p.p == 0 {
		p.round++
		ctx.Broadcast(benchRoundMsg{r: p.round})
		return
	}
	ctx.Receive(p.policy)
}

func (p *benchFloodProto) OnCrash()   {}
func (p *benchFloodProto) OnRecover() {}

func runSimScenario(b *testing.B, cfg simtime.Config, factory func(p core.ProcessID) simtime.Proto, horizon simtime.Time) {
	b.Helper()
	sim, err := simtime.New(cfg, factory)
	if err != nil {
		b.Fatal(err)
	}
	sim.RunUntilTime(horizon)
	if sim.Stats().Steps == 0 {
		b.Fatal("scenario executed no steps")
	}
}

// BenchmarkSim_EventLoop is the headline hot-path number: an 8-process
// all-good run where every step is a send or a FIFO receive.
func BenchmarkSim_EventLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runSimScenario(b, simtime.Config{N: 8, Phi: 1, Delta: 5, Seed: uint64(i) + 1},
			func(core.ProcessID) simtime.Proto { return &benchProto{policy: simtime.FIFO{}} }, 200)
	}
}

// BenchmarkSim_BroadcastFanout stresses the n-destination enqueue batch:
// 16 processes, everyone alternating send/receive.
func BenchmarkSim_BroadcastFanout(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runSimScenario(b, simtime.Config{N: 16, Phi: 1, Delta: 5, Seed: uint64(i) + 1},
			func(core.ProcessID) simtime.Proto { return &benchProto{policy: simtime.FIFO{}} }, 100)
	}
}

// BenchmarkSim_HighestRoundReceive deepens buffers under a flooding sender
// so HighestRoundFirst selection over large buffers dominates.
func BenchmarkSim_HighestRoundReceive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runSimScenario(b, simtime.Config{N: 8, Phi: 1, Delta: 5, Seed: uint64(i) + 1},
			func(p core.ProcessID) simtime.Proto {
				return &benchFloodProto{p: p, policy: simtime.HighestRoundFirst{}}
			}, 200)
	}
}

// BenchmarkSim_BadPeriodChurn exercises the rng-heavy regime: jittered
// gaps and delays plus 30% loss in a permanent bad period.
func BenchmarkSim_BadPeriodChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runSimScenario(b, simtime.Config{
			N: 8, Phi: 1, Delta: 5, Seed: uint64(i) + 1,
			Periods: []simtime.Period{{Start: 0, Kind: simtime.Bad}},
			Bad:     simtime.BadConfig{LossProb: 0.3, MinDelay: 1, MaxDelay: 8, MinGap: 0.5, MaxGap: 2},
		}, func(core.ProcessID) simtime.Proto { return &benchProto{policy: simtime.FIFO{}} }, 300)
	}
}

// BenchmarkSim_Alg2StackDecision runs the full Alg2+OTR stack to an
// all-decided state — the event core under its production protocol load.
func BenchmarkSim_Alg2StackDecision(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stack, err := predimpl.BuildStack(predimpl.StackConfig{
			Kind:      predimpl.UseAlg2,
			Algorithm: otr.Algorithm{},
			Initial:   []core.Value{3, 1, 4, 1, 5, 9, 2},
			Sim:       simtime.Config{N: 7, Phi: 1, Delta: 5, Seed: uint64(i) + 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if stack.RunUntilAllDecided(core.FullSet(7), 2000) < 0 {
			b.Fatal("stack did not decide")
		}
	}
}

// BenchmarkRunner_OTRStepRound measures one lock-step HO round at n=16
// with allocation accounting (the E7 inner loop).
func BenchmarkRunner_OTRStepRound(b *testing.B) {
	initial := make([]core.Value, 16)
	for i := range initial {
		initial[i] = core.Value(i)
	}
	ru, err := core.NewRunner(otr.Algorithm{}, initial, adversary.Full{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ru.StepRound()
	}
}

// BenchmarkRunner_E7RandomizedRun is one complete E7 cell: a 25-round
// randomized-adversary execution plus its safety check.
func BenchmarkRunner_E7RandomizedRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prov := &adversary.Arbitrary{RNG: xrand.New(uint64(i)), EmptyBias: 0.2}
		ru, err := core.NewRunner(otr.Algorithm{}, []core.Value{3, 1, 4, 1, 5, 9, 2}, prov)
		if err != nil {
			b.Fatal(err)
		}
		ru.RunRounds(25)
		if serr := ru.Trace().CheckConsensusSafety(); serr != nil {
			b.Fatal(serr)
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the layers.
// ---------------------------------------------------------------------------

// BenchmarkMicro_OTRRound measures one lock-step HO round of OneThirdRule
// at n=16.
func BenchmarkMicro_OTRRound(b *testing.B) {
	initial := make([]core.Value, 16)
	for i := range initial {
		initial[i] = core.Value(i)
	}
	ru, err := core.NewRunner(otr.Algorithm{}, initial, adversary.Full{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ru.StepRound()
	}
}

// BenchmarkMicro_UVRound measures one UniformVoting round at n=16.
func BenchmarkMicro_UVRound(b *testing.B) {
	initial := make([]core.Value, 16)
	ru, err := core.NewRunner(uv.Algorithm{}, initial, adversary.Full{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ru.StepRound()
	}
}

// BenchmarkMicro_LastVotingPhase measures one four-round LastVoting phase
// at n=16.
func BenchmarkMicro_LastVotingPhase(b *testing.B) {
	initial := make([]core.Value, 16)
	ru, err := core.NewRunner(lastvoting.Algorithm{}, initial, adversary.Full{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ru.RunRounds(4)
	}
}

// BenchmarkMicro_TranslationMacroRound measures one f+1-round macro-round
// of the Algorithm 4 translation (n=9, f=4).
func BenchmarkMicro_TranslationMacroRound(b *testing.B) {
	initial := make([]core.Value, 9)
	alg := translation.Algorithm{Inner: otr.Algorithm{}, F: 4}
	ru, err := core.NewRunner(alg, initial, adversary.Full{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ru.RunRounds(5)
	}
}

// BenchmarkMicro_SimtimeStep measures raw event-loop throughput: one
// Algorithm 2 protocol step (send or receive) on the §4.1 simulator.
func BenchmarkMicro_SimtimeStep(b *testing.B) {
	stack, err := predimpl.BuildStack(predimpl.StackConfig{
		Kind:      predimpl.UseAlg2,
		Algorithm: otr.Algorithm{},
		Initial:   make([]core.Value, 8),
		Sim:       simtime.Config{N: 8, Phi: 1, Delta: 5, Seed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	target := stack.Sim.Stats().Steps + int64(b.N)
	stack.Sim.RunUntil(func() bool { return stack.Sim.Stats().Steps >= target }, simtime.Forever)
}

// BenchmarkMicro_PredicateCheck measures checking P_otr on a 50-round
// trace at n=16.
func BenchmarkMicro_PredicateCheck(b *testing.B) {
	prov := &adversary.TransmissionLoss{Rate: 0.3, RNG: xrand.New(5)}
	ru, err := core.NewRunner(otr.Algorithm{}, make([]core.Value, 16), prov)
	if err != nil {
		b.Fatal(err)
	}
	ru.RunRounds(50)
	tr := ru.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predicate.Potr{}.Holds(tr)
	}
}

// BenchmarkMicro_CTConsensus measures one Chandra–Toueg run to full
// decision over reliable links (n=5).
func BenchmarkMicro_CTConsensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nodes := make([]*ctcs.Node, 5)
		sim, err := runtime.New(runtime.Config{
			N: 5, MinDelay: 0.5, MaxDelay: 1, Seed: uint64(i),
		}, func(p runtime.NodeID) runtime.Handler {
			nodes[p] = ctcs.NewNodeDeferred(5, core.Value(int(p)+1), 2)
			return nodes[p]
		})
		if err != nil {
			b.Fatal(err)
		}
		det := fd.NewEventuallyStrong(sim, 0, uint64(i))
		for _, nd := range nodes {
			nd.SetDetector(det)
		}
		ok := sim.RunUntil(func() bool {
			for _, nd := range nodes {
				if _, decided := nd.Decided(); !decided {
					return false
				}
			}
			return true
		}, 400)
		if !ok {
			b.Fatal("CT did not decide over reliable links")
		}
	}
}

// BenchmarkMicro_ACRConsensus measures one Aguilera et al. run to full
// decision with pre-GST loss (n=5).
func BenchmarkMicro_ACRConsensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nodes := make([]*acr.Node, 5)
		stores := stable.NewRegistry()
		sim, err := runtime.New(runtime.Config{
			N: 5, MinDelay: 0.5, MaxDelay: 1,
			LossProb: 0.3, GST: 30, Seed: uint64(i),
		}, func(p runtime.NodeID) runtime.Handler {
			nodes[p] = acr.NewNodeDeferred(5, core.Value(int(p)+1), stores.For(int(p)), 2, 3)
			return nodes[p]
		})
		if err != nil {
			b.Fatal(err)
		}
		det := fd.NewEventuallySu(sim, 30, uint64(i))
		for _, nd := range nodes {
			nd.SetDetector(det)
		}
		ok := sim.RunUntil(func() bool {
			for _, nd := range nodes {
				if _, decided := nd.Decided(); !decided {
					return false
				}
			}
			return true
		}, 3000)
		if !ok {
			b.Fatal("ACR did not decide")
		}
	}
}

// BenchmarkMicro_AtomicBroadcastBatch measures delivering a 30-message
// burst through batched atomic broadcast under 15% loss.
func BenchmarkMicro_AtomicBroadcastBatch(b *testing.B) {
	rng := xrand.New(3)
	for i := 0; i < b.N; i++ {
		bc, err := abcast.New(5, otr.Algorithm{}, func(int) core.HOProvider {
			return &adversary.TransmissionLoss{Rate: 0.15, RNG: rng.Fork()}
		}, 300)
		if err != nil {
			b.Fatal(err)
		}
		for m := 0; m < 30; m++ {
			bc.Broadcast(core.ProcessID(m%5), "payload")
		}
		if _, err := bc.Drain(100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_ModelCheckOTRN3 measures the exhaustive n=3 safety
// verification of OneThirdRule.
func BenchmarkMicro_ModelCheckOTRN3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := modelcheck.New(modelcheck.OTRCoder{}, []core.Value{0, 1, 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Violation != nil {
			b.Fatal(res.Violation.Message)
		}
	}
}

// BenchmarkMicro_KVStoreSlot measures one replicated-KV consensus slot
// under 20% loss (n=5).
func BenchmarkMicro_KVStoreSlot(b *testing.B) {
	rng := xrand.New(1)
	cluster, err := kvstore.NewCluster(5, otr.Algorithm{}, func(int) core.HOProvider {
		return &adversary.TransmissionLoss{Rate: 0.2, RNG: rng.Fork()}
	}, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cluster.Submit(i%5, kvstore.Command{Op: kvstore.OpPut, Key: "k", Value: "v"}); err != nil {
			b.Fatal(err)
		}
		if _, err := cluster.DecideSlot(); err != nil {
			b.Fatal(err)
		}
	}
}
